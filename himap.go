// Package himap is a from-scratch Go implementation of HiMap — the fast,
// scalable, high-quality CGRA mapping approach of Wijerathne et al.
// (DATE 2021) — together with everything it is evaluated against: the CGRA
// architecture model, a modulo-routing-resource-graph place-and-route
// engine, the systolic space-time transformation machinery, a
// conventional (simulated-annealing) baseline mapper, a cycle-accurate
// CGRA simulator for functional validation, and a performance/power
// model.
//
// Quick start:
//
//	k := himap.KernelGEMM()
//	res, err := himap.CompileRequest(ctx, himap.Request{
//		Kernel: k,
//		Fabric: himap.Fabric{CGRA: himap.DefaultCGRA(8, 8)},
//	})
//	if err != nil { ... }
//	fmt.Println(res.Summary())                      // mapping statistics
//	err = himap.Validate(res, 3, 42)                // cycle-accurate check
//	fmt.Println(himap.RenderSchedule(res.Config))   // space-time view
//
// The deeper layers live in internal/ packages and are re-exported here
// where a downstream user needs them; DESIGN.md documents the system
// inventory and EXPERIMENTS.md the reproduction of every table and figure
// of the paper.
package himap

import (
	"context"
	"io"

	"himap/internal/arch"
	"himap/internal/baseline"
	"himap/internal/diag"
	"himap/internal/exact"
	core "himap/internal/himap"
	"himap/internal/ir"
	"himap/internal/kernel"
	"himap/internal/power"
	"himap/internal/sim"
	"himap/internal/systolic"
	"himap/internal/viz"
)

// Re-exported core types. The aliases keep one canonical definition while
// letting applications import only this package.
type (
	// CGRA describes a target array (size, register file, ports, memories).
	CGRA = arch.CGRA
	// Fabric is the full architecture model: the PE array (CGRA) plus the
	// interconnect topology and the per-PE capability layout. The zero
	// Topology/Mem values reproduce the classic model (mesh links, every
	// PE memory-capable), so Fabric{CGRA: cg} is a drop-in upgrade.
	Fabric = arch.Fabric
	// Topology selects the fabric's link provider (mesh, torus, mesh+diag).
	Topology = arch.Topology
	// MemPolicy selects which PEs carry a memory port.
	MemPolicy = arch.MemPolicy
	// BandwidthClass selects the interconnect bandwidth model (link
	// lanes, shared egress bus, narrowed register-file ports).
	BandwidthClass = arch.BandwidthClass
	// CostClass selects the silicon cost corner priced by the power
	// model; it never changes routing.
	CostClass = arch.CostClass
	// PECaps is the capability class of one PE.
	PECaps = arch.PECaps
	// Link is one typed directed link of a fabric.
	Link = arch.Link
	// Config is a complete CGRA mapping: per-PE repeating instruction
	// streams plus memory-access correlation metadata.
	Config = arch.Config
	// Kernel is a loop-kernel specification (see internal/kernel for the
	// DSL used to define new kernels).
	Kernel = kernel.Kernel
	// Options tunes the HiMap compilation flow.
	Options = core.Options
	// Result is a completed HiMap mapping with statistics.
	Result = core.Result
	// BaselineOptions tunes the conventional mapper.
	BaselineOptions = baseline.Options
	// BaselineResult is a completed conventional mapping.
	BaselineResult = baseline.Result
	// BaselineTooLargeError reports a DFG past the conventional mapper's
	// scalability wall (BaselineOptions.MaxNodes); match with errors.As.
	BaselineTooLargeError = baseline.ErrTooLarge
	// BaselineTimeoutError reports an exhausted
	// BaselineOptions.TimeBudget; match with errors.As.
	BaselineTimeoutError = baseline.ErrTimeout
	// ExactOptions tunes the exact branch-and-bound mapper.
	ExactOptions = exact.Options
	// ExactResult is a completed exact mapping with its certificate.
	ExactResult = exact.Result
	// Optimality is the certificate block of an exact mapping: whether
	// the II was proved minimal, the best lower bound, and the kind of
	// proof backing it.
	Optimality = exact.Optimality
	// Certificate names the kind of optimality proof.
	Certificate = exact.Certificate
	// ExactTooLargeError reports a DFG past ExactOptions.MaxNodes — the
	// exact mapper refuses rather than search hopelessly; match with
	// errors.As.
	ExactTooLargeError = exact.ErrTooLarge
	// PowerModel converts configurations to MOPS and mW.
	PowerModel = power.Model
	// Scheme is a block-size-independent systolic space-time template.
	Scheme = systolic.Scheme
)

// Diagnostics: the typed failure taxonomy and tracing contract shared by
// the HiMap pipeline and the conventional baseline (see internal/diag).
type (
	// CompileError is the structured failure of a whole compilation: the
	// deterministic lowest-ranked attempt's error plus the best-ranked
	// failure per pipeline stage, with the true attempt count.
	CompileError = core.CompileError
	// StageError pins one failure class to a pipeline stage, kernel,
	// CGRA, and attempt; recover it with errors.As.
	StageError = diag.StageError
	// Tracer receives one TraceSpan per executed pipeline stage. Set
	// Options.Tracer (or BaselineOptions.Tracer) to observe a compile.
	Tracer = diag.Tracer
	// TraceSpan is one completed stage execution: stage name, attempt and
	// wave identity, wall time, counters, and the failure (if any).
	TraceSpan = diag.Span
	// Memo is the compilation artifact cache (generic IDFG, sub-mapping
	// lists, unrolled DFG/ISDG), content-keyed by kernel specification.
	// Compiles share a process-wide cache unless Options.Memo injects one.
	Memo = core.Memo
)

// Failure classes of the compilation pipelines. Every compile failure
// wraps the class that caused it, so callers dispatch with errors.Is
// regardless of stage, mapper, or Workers value:
//
//	_, err := himap.Compile(k, cg, himap.Options{MaxRouteRounds: 1})
//	if errors.Is(err, himap.ErrRouteCongested) { ... }
var (
	// ErrNoSubMapping: step 1 found no valid IDFG → sub-CGRA mapping.
	ErrNoSubMapping = diag.ErrNoSubMapping
	// ErrSchemeInfeasible: no systolic space-time scheme satisfies the
	// dependences and the VSA shape.
	ErrSchemeInfeasible = diag.ErrSchemeInfeasible
	// ErrRouteCongested: negotiated-congestion routing failed within the
	// round budget.
	ErrRouteCongested = diag.ErrRouteCongested
	// ErrBlockPinConflict: a pinned block dimension (Kernel.FixedBlock)
	// contradicts MinBlock or the scheme's VSA axis extent.
	ErrBlockPinConflict = diag.ErrBlockPinConflict
	// ErrBlockTooSmall: a derived block dimension fell below MinBlock.
	ErrBlockTooSmall = diag.ErrBlockTooSmall
	// ErrPlacementInfeasible: placement found no zero-violation solution.
	ErrPlacementInfeasible = diag.ErrPlacementInfeasible
	// ErrReplicaConflict: replication collided while stamping a canonical
	// route onto a class member.
	ErrReplicaConflict = diag.ErrReplicaConflict
	// ErrConfigInvalid: the emitted configuration failed final validation.
	ErrConfigInvalid = diag.ErrConfigInvalid
	// ErrMemPortInfeasible: the kernel demands more memory ports than the
	// fabric's memory-capable PEs provide within any candidate sub-CGRA.
	ErrMemPortInfeasible = diag.ErrMemPortInfeasible
	// ErrBandwidthInfeasible: the placed schedule provably demands more
	// same-cycle link departures than the fabric's bandwidth class
	// provides (raised before congestion negotiation is attempted).
	ErrBandwidthInfeasible = diag.ErrBandwidthInfeasible
	// ErrInvalidRequest: the request was malformed before any mapping was
	// attempted (nil kernel, invalid fabric) — a caller bug, not a
	// mapping failure.
	ErrInvalidRequest = diag.ErrInvalidRequest
	// ErrExactTimeout: the exact mapper's ExactOptions.TimeBudget expired
	// before it could either map or refute; the best lower bound reached
	// is reported in the error message.
	ErrExactTimeout = diag.ErrExactTimeout
	// ErrProvedInfeasible: the exact mapper exhaustively refuted every II
	// in its search range within the schedule horizon — the instance
	// (kernel × block × fabric) needs a bigger fabric or a smaller block.
	ErrProvedInfeasible = diag.ErrProvedInfeasible
	// ErrCanceled: the compile's context was canceled or its deadline
	// expired before a mapping was committed. Both mappers check their
	// context at stage boundaries (HiMap additionally between speculative
	// waves, the conventional mapper between II attempts and every 4096
	// annealing moves); the original context error stays in the cause
	// chain, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) also hold.
	ErrCanceled = diag.ErrCanceled
)

// Fabric topologies, memory-port policies, bandwidth classes, and cost
// classes (see arch.Topology, arch.MemPolicy, arch.BandwidthClass, and
// arch.CostClass for full documentation).
const (
	TopoMesh     = arch.TopoMesh
	TopoTorus    = arch.TopoTorus
	TopoMeshDiag = arch.TopoMeshDiag
	MemAll       = arch.MemAll
	MemBoundary  = arch.MemBoundary
	MemNone      = arch.MemNone
	BWUnit       = arch.BWUnit
	BWDouble     = arch.BWDouble
	BWBus        = arch.BWBus
	BWNarrowRF   = arch.BWNarrowRF
	CostBalanced = arch.CostBalanced
	CostLowPower = arch.CostLowPower
	CostHighPerf = arch.CostHighPerf
)

// Optimality certificate kinds (see exact.Certificate).
const (
	// CertNone: no proof — the II is an upper bound only.
	CertNone = exact.CertNone
	// CertResMII: the mapping's II equals the static resource/recurrence
	// lower bound, so it is minimal regardless of schedule horizon.
	CertResMII = exact.CertResMII
	// CertExhaustive: every smaller II was exhaustively refuted within
	// the search horizon.
	CertExhaustive = exact.CertExhaustive
)

// ExactLowerBound returns the static II lower bound (max of resource
// MII and recurrence MII) the exact mapper deepens from — usable on its
// own to sanity-check any mapper's II without running a search.
func ExactLowerBound(k *Kernel, fab Fabric, block []int) (int, error) {
	return exact.LowerBound(k, fab, block)
}

// ParseTopology maps a CLI name (mesh|torus|diag) to a Topology.
func ParseTopology(s string) (Topology, error) { return arch.ParseTopology(s) }

// ParseMemPolicy maps a CLI name (all|boundary|none) to a MemPolicy.
func ParseMemPolicy(s string) (MemPolicy, error) { return arch.ParseMemPolicy(s) }

// ParseBandwidth maps a CLI name (unit|double|bus|narrow-rf) to a
// BandwidthClass; the empty string selects BWUnit.
func ParseBandwidth(s string) (BandwidthClass, error) { return arch.ParseBandwidth(s) }

// ParseCostClass maps a CLI name (balanced|low-power|high-perf) to a
// CostClass; the empty string selects CostBalanced.
func ParseCostClass(s string) (CostClass, error) { return arch.ParseCostClass(s) }

// TopologyNames returns the accepted -topology CLI names, "|"-joined.
func TopologyNames() string { return arch.TopologyNames() }

// MemPolicyNames returns the accepted -mem-pes CLI names, "|"-joined.
func MemPolicyNames() string { return arch.MemPolicyNames() }

// BandwidthNames returns the accepted -bandwidth CLI names, "|"-joined.
func BandwidthNames() string { return arch.BandwidthNames() }

// CostClassNames returns the accepted -cost CLI names, "|"-joined.
func CostClassNames() string { return arch.CostClassNames() }

// ExploreFabrics returns the deterministic design-space candidate set a
// rows×cols array spans: the default fabric plus topology, memory,
// bandwidth, and cost-class variants (the set behind POST /v1/explore
// and the experiments explore sweep).
func ExploreFabrics(rows, cols int) []Fabric { return arch.ExploreFabrics(rows, cols) }

// DefaultFabric returns the paper's evaluation architecture as a fabric:
// mesh links, every PE memory-capable.
func DefaultFabric(rows, cols int) Fabric { return arch.DefaultFabric(rows, cols) }

// NewTextTracer returns a Tracer printing one human-readable line per
// stage span to w — the tracer behind cmd/himap's -trace flag.
func NewTextTracer(w io.Writer) Tracer { return diag.NewTextTracer(w) }

// TraceCollector accumulates spans in memory for programmatic inspection
// (per-stage wall-time breakdowns, failure analysis).
type TraceCollector = diag.Collector

// NewTraceCollector returns an empty in-memory span collector.
func NewTraceCollector() *TraceCollector { return diag.NewCollector() }

// NewMemo returns a fresh, empty artifact cache for Options.Memo —
// useful to isolate compiles or to measure cold-path cost.
func NewMemo() *Memo { return core.NewMemo() }

// DefaultCGRA returns the paper's evaluation architecture at the given
// array size: per PE an ALU, a 4-register file (2R/2W), a crossbar, a
// 32-entry configuration memory, and a 64-word data memory, at 510 MHz.
func DefaultCGRA(rows, cols int) CGRA { return arch.Default(rows, cols) }

// Validate executes nblocks pipelined block instances of the mapping on
// the cycle-accurate simulator and compares every block's outputs against
// the kernel's golden executor.
func Validate(res *Result, nblocks int, seed int64) error {
	return sim.Validate(res.Config, res.Kernel, res.Block, nblocks, seed)
}

// ValidateConfig is Validate for any configuration (e.g. a baseline
// mapping).
func ValidateConfig(cfg *Config, k *Kernel, block []int, nblocks int, seed int64) error {
	return sim.Validate(cfg, k, block, nblocks, seed)
}

// DefaultPowerModel returns the 40 nm / 510 MHz power coefficients used
// by the evaluation.
func DefaultPowerModel() PowerModel { return power.Default40nm() }

// PowerModelFor returns the power model of a fabric: the evaluation's
// balanced 40 nm point scaled by the fabric's cost corner and bandwidth
// class. The default fabric maps to DefaultPowerModel exactly.
func PowerModelFor(fab Fabric) PowerModel { return power.ModelFor(fab) }

// RenderSchedule renders the space-time schedule grid of a configuration.
func RenderSchedule(cfg *Config) string { return viz.ScheduleGrid(cfg) }

// RenderPEProgram lists one PE's instruction stream.
func RenderPEProgram(cfg *Config, r, c int) string { return viz.PEProgram(cfg, r, c) }

// RenderUtilization renders the per-PE FU utilization grid.
func RenderUtilization(cfg *Config) string { return viz.UtilizationMap(cfg) }

// Evaluation kernels of the paper (Table II).
func KernelADI() *Kernel  { return kernel.ADI() }
func KernelATAX() *Kernel { return kernel.ATAX() }
func KernelBICG() *Kernel { return kernel.BICG() }
func KernelMVT() *Kernel  { return kernel.MVT() }
func KernelGEMM() *Kernel { return kernel.GEMM() }
func KernelSYRK() *Kernel { return kernel.SYRK() }
func KernelFW() *Kernel   { return kernel.FW() }
func KernelTTM() *Kernel  { return kernel.TTM() }

// KernelConv2D returns the 3×3-window convolution extension kernel.
func KernelConv2D() *Kernel { return kernel.Conv2D() }

// EvaluationKernels returns the eight Table-II kernels in paper order.
func EvaluationKernels() []*Kernel { return kernel.Evaluation() }

// KernelByName looks a kernel up by its Table-II name (plus CONV2D).
func KernelByName(name string) (*Kernel, error) { return kernel.ByName(name) }

// Kernel-specification DSL re-exports, so downstream users can define new
// kernels against the public API alone (see examples/custom-kernel).
type (
	// BodyOp is one loop-body operation of a kernel specification.
	BodyOp = kernel.BodyOp
	// Input is a guarded operand-source selection list.
	Input = kernel.Input
	// Case pairs a guard predicate with an operand source.
	Case = kernel.Case
	// Source describes an operand origin (dependence, memory, constant).
	Source = kernel.Source
	// StoreRule writes an op's result to a tensor under a guard.
	StoreRule = kernel.StoreRule
	// TensorSpec declares a kernel tensor.
	TensorSpec = kernel.TensorSpec
	// AffineMap maps iteration vectors to tensor indices.
	AffineMap = kernel.AffineMap
	// Pred is a conjunction of iteration-vector conditions.
	Pred = kernel.Pred
	// Tensor is a dense multi-dimensional integer array.
	Tensor = kernel.Tensor
)

// DSL constructors (see internal/kernel for full documentation).
var (
	AM       = kernel.AM
	In       = kernel.In
	Fixed    = kernel.Fixed
	Dep      = kernel.Dep
	Same     = kernel.Same
	Mem      = kernel.Mem
	ConstSrc = kernel.Const
	First    = kernel.First
	Last     = kernel.Last
	NotFirst = kernel.NotFirst
	EqDims   = kernel.EqDims
	And      = kernel.And
	Always   = kernel.Always
)

// NewTensor allocates a zeroed tensor.
func NewTensor(dims ...int) *Tensor { return kernel.NewTensor(dims...) }

// Bitstream is a binary configuration-memory image (deduplicated words
// plus the per-PE schedule ROM).
type Bitstream = arch.Bitstream

// EncodeBitstream packs a configuration into its configuration-memory
// image, enforcing the per-PE depth bound.
func EncodeBitstream(cfg *Config) (*Bitstream, error) { return arch.Encode(cfg) }

// SaveConfig serializes a mapping (architecture, schedule, memory
// correlation metadata) as JSON.
func SaveConfig(cfg *Config, w io.Writer) error { return cfg.WriteJSON(w) }

// LoadConfig deserializes and validates a mapping saved by SaveConfig.
func LoadConfig(r io.Reader) (*Config, error) { return arch.ReadJSON(r) }

// Extension kernels beyond the Table-II evaluation set.
func KernelNW() *Kernel      { return kernel.NW() }
func KernelDOITGEN() *Kernel { return kernel.DOITGEN() }
func KernelDOTPROD() *Kernel { return kernel.DOTPROD() }
func KernelRELU() *Kernel    { return kernel.RELU() }

// AutoResult is CompileAuto's unified outcome.
type AutoResult struct {
	// Mapper is "himap" or "conventional".
	Mapper      string
	HiMap       *Result         // set when Mapper == "himap"
	Baseline    *BaselineResult // set when Mapper == "conventional"
	Config      *Config
	Block       []int
	Utilization float64
}

// CompileAuto applies the paper's Table-I triage (§VI, benchmark
// selection): multi-dimensional kernels with inter-iteration dependencies
// go through HiMap's virtual systolic mapping; one-dimensional or
// dependence-free kernels gain nothing from it and are modulo-scheduled
// by the conventional mapper instead ("we can apply existing software
// pipelining techniques").
func CompileAuto(k *Kernel, cg CGRA, opts Options) (*AutoResult, error) {
	if k.Dim > 1 && k.HasInterIterationDeps() {
		res, err := CompileRequest(context.Background(),
			Request{Kernel: k, Fabric: Fabric{CGRA: cg}, Options: opts})
		if err != nil {
			return nil, err
		}
		return &AutoResult{
			Mapper: "himap", HiMap: res,
			Config: res.Config, Block: res.Block, Utilization: res.Utilization,
		}, nil
	}
	// Pick the largest block the conventional mapper handles comfortably
	// (small: simulated annealing degrades well before the 400-node wall).
	b := baseline.LargestFeasibleBlock(k, 60, 16)
	res, err := CompileRequest(context.Background(), Request{
		Kernel: k, Fabric: Fabric{CGRA: cg}, Mapper: MapperConventional,
		Block: k.UniformBlock(b), Baseline: BaselineOptions{Seed: 1},
	})
	if err != nil {
		return nil, err
	}
	return &AutoResult{
		Mapper: "conventional", Baseline: res.Conventional,
		Config: res.Config, Block: res.Block, Utilization: res.Utilization,
	}, nil
}

// OpKind identifies a loop-body operation kind.
type OpKind = ir.OpKind

// Operation kinds usable in kernel specifications. Compute kinds occupy
// an FU; OpRoute is pure systolic data movement realized on routing
// resources.
const (
	OpAdd   = ir.OpAdd
	OpSub   = ir.OpSub
	OpMul   = ir.OpMul
	OpDiv   = ir.OpDiv
	OpMin   = ir.OpMin
	OpMax   = ir.OpMax
	OpAnd   = ir.OpAnd
	OpOr    = ir.OpOr
	OpXor   = ir.OpXor
	OpShl   = ir.OpShl
	OpShr   = ir.OpShr
	OpSel   = ir.OpSel
	OpRoute = ir.OpRoute
)
