package himap_test

import (
	"strings"
	"testing"

	"himap"
)

// TestPublicAPIEndToEnd exercises the facade: compile, inspect, validate,
// render — the quickstart flow.
func TestPublicAPIEndToEnd(t *testing.T) {
	k := himap.KernelGEMM()
	res, err := compile(k, himap.DefaultCGRA(4, 4), himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.99 {
		t.Errorf("U = %v", res.Utilization)
	}
	if err := himap.Validate(res, 2, 11); err != nil {
		t.Fatal(err)
	}
	if s := himap.RenderSchedule(res.Config); !strings.Contains(s, "cycle 0") {
		t.Error("schedule render broken")
	}
	if s := himap.RenderPEProgram(res.Config, 0, 0); !strings.Contains(s, "PE(0,0)") {
		t.Error("program render broken")
	}
	if s := himap.RenderUtilization(res.Config); !strings.Contains(s, "100%") {
		t.Error("utilization render broken")
	}
	model := himap.DefaultPowerModel()
	if model.PerformanceMOPS(res.Config) <= 0 || model.PowerMW(res.Config) <= 0 {
		t.Error("power model broken")
	}
}

func TestPublicAPIKernelAccessors(t *testing.T) {
	if len(himap.EvaluationKernels()) != 8 {
		t.Error("expected the 8 Table-II kernels")
	}
	for _, name := range []string{"ADI", "ATAX", "BICG", "MVT", "GEMM", "SYRK", "FW", "TTM", "CONV2D"} {
		k, err := himap.KernelByName(name)
		if err != nil || k.Name != name {
			t.Errorf("KernelByName(%s): %v, %v", name, k, err)
		}
	}
	if _, err := himap.KernelByName("nope"); err == nil {
		t.Error("unknown kernel should fail")
	}
}

func TestPublicAPIBaseline(t *testing.T) {
	k := himap.KernelBICG()
	res, err := compileBaseline(k, himap.DefaultCGRA(4, 4), []int{3, 3}, himap.BaselineOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := himap.ValidateConfig(res.Config, k, res.Block, 2, 3); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPICustomKernelDSL defines a kernel through the exported DSL
// and maps it — the custom-kernel example's flow as a regression test.
func TestPublicAPICustomKernelDSL(t *testing.T) {
	ij := himap.AM(2, []int{1, 0, 0}, []int{0, 1, 0})
	k := &himap.Kernel{
		Name: "ROWSUM", Desc: "row prefix sums", Suite: "custom",
		Dim: 2, MinBlock: 2,
		Tensors: []himap.TensorSpec{
			{Name: "A", Dims: func(b []int) []int { return []int{b[0], b[1]} }},
			{Name: "O", Out: true, Dims: func(b []int) []int { return []int{b[0], b[1]} }},
		},
		Body: []himap.BodyOp{
			{Name: "acc", Kind: himap.OpAdd,
				A: himap.Fixed(himap.Mem("A", ij)),
				B: himap.In(
					himap.Case{When: himap.First(1), Src: himap.ConstSrc(0)},
					himap.Case{When: himap.Always(), Src: himap.Dep(0, 0, 1)}),
				Stores: []himap.StoreRule{{When: himap.Always(), Tensor: "O", Map: ij}}},
		},
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := compile(k, himap.DefaultCGRA(4, 4), himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := himap.Validate(res, 3, 21); err != nil {
		t.Fatal(err)
	}
}

// TestCompileAutoDispatch: the Table-I triage — multi-dimensional kernels
// with dependencies use HiMap, 1-D / dependence-free kernels fall back to
// conventional modulo scheduling.
func TestCompileAutoDispatch(t *testing.T) {
	cg := himap.DefaultCGRA(4, 4)
	res, err := himap.CompileAuto(himap.KernelGEMM(), cg, himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapper != "himap" || res.HiMap == nil {
		t.Errorf("GEMM should dispatch to himap, got %q", res.Mapper)
	}
	for _, k := range []*himap.Kernel{himap.KernelDOTPROD(), himap.KernelRELU()} {
		res, err := himap.CompileAuto(k, cg, himap.Options{})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if res.Mapper != "conventional" || res.Baseline == nil {
			t.Errorf("%s should dispatch to the conventional mapper, got %q", k.Name, res.Mapper)
		}
		if err := himap.ValidateConfig(res.Config, k, res.Block, 2, 9); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}
