package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and chdirs into it (restored
// on cleanup) — run() loads the module containing the working
// directory, exactly like the real CLI.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
	return dir
}

const cleanSrc = `package tmpmod

func Add(a, b int) int { return a + b }
`

const dirtySrc = `package tmpmod

//himap:noalloc
func Hot(n int) []int {
	return make([]int, n)
}
`

func lint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCleanModuleExitsZero(t *testing.T) {
	writeModule(t, map[string]string{"tmpmod.go": cleanSrc})
	if code, out, errOut := lint(t, "./..."); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out, errOut)
	}
}

func TestFindingsExitOne(t *testing.T) {
	writeModule(t, map[string]string{"tmpmod.go": dirtySrc})
	code, out, _ := lint(t, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s", code, out)
	}
	if !strings.Contains(out, "builtin make allocates") {
		t.Fatalf("finding not printed:\n%s", out)
	}
}

func TestAnalyzerFilter(t *testing.T) {
	writeModule(t, map[string]string{"tmpmod.go": dirtySrc})
	// The violation is a noalloc finding: filtering to determinism
	// must not report it...
	if code, out, _ := lint(t, "-analyzer", "determinism", "./..."); code != 0 {
		t.Fatalf("determinism-only exit = %d, want 0\nstdout: %s", code, out)
	}
	// ...and filtering to noalloc must.
	if code, _, _ := lint(t, "-analyzer", "noalloc", "./..."); code != 1 {
		t.Fatalf("noalloc-only exit = %d, want 1", code)
	}
}

func TestUnknownAnalyzerUsageError(t *testing.T) {
	writeModule(t, map[string]string{"tmpmod.go": cleanSrc})
	code, _, errOut := lint(t, "-analyzer", "nosuch", "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") {
		t.Fatalf("no usage error on stderr:\n%s", errOut)
	}
}

func TestLoadFailureExitsTwo(t *testing.T) {
	writeModule(t, map[string]string{"tmpmod.go": "package tmpmod\n\nfunc broken( {\n"})
	if code, _, _ := lint(t, "./..."); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBaselineRatchet(t *testing.T) {
	dir := writeModule(t, map[string]string{"tmpmod.go": dirtySrc})
	bl := filepath.Join(dir, "bl.json")

	// Record the debt, then verify the comparison is exact.
	if code, out, errOut := lint(t, "-write-baseline", bl, "./..."); code != 0 {
		t.Fatalf("write exit = %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if code, out, _ := lint(t, "-baseline", bl, "./..."); code != 0 {
		t.Fatalf("recorded debt still fails: exit = %d\nstdout: %s", code, out)
	}

	// New debt fails the ratchet.
	extra := dirtySrc + "\n//himap:noalloc\nfunc Hot2(n int) []int {\n\treturn make([]int, n)\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "tmpmod.go"), []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := lint(t, "-baseline", bl, "./...")
	if code != 1 || !strings.Contains(out, "new finding not in baseline") {
		t.Fatalf("new debt: exit = %d\nstdout: %s", code, out)
	}

	// Fixed debt also fails (shrink guard): the entry must be removed.
	if err := os.WriteFile(filepath.Join(dir, "tmpmod.go"), []byte(cleanSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = lint(t, "-baseline", bl, "./...")
	if code != 1 || !strings.Contains(out, "stale baseline entry") {
		t.Fatalf("stale debt: exit = %d\nstdout: %s", code, out)
	}
}

func TestWriteBaselineRejectsAnalyzerFilter(t *testing.T) {
	writeModule(t, map[string]string{"tmpmod.go": cleanSrc})
	if code, _, _ := lint(t, "-analyzer", "noalloc", "-write-baseline", "bl.json", "./..."); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestWriteBaselineIsDeterministic(t *testing.T) {
	dir := writeModule(t, map[string]string{"tmpmod.go": dirtySrc})
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if code, _, errOut := lint(t, "-write-baseline", a, "./..."); code != 0 {
		t.Fatalf("write a: %s", errOut)
	}
	if code, _, errOut := lint(t, "-write-baseline", b, "./..."); code != 0 {
		t.Fatalf("write b: %s", errOut)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatalf("two writes over one module differ:\n%s\nvs\n%s", da, db)
	}
}
