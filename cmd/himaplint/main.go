// Command himaplint runs the repository's custom static-analysis suite
// (internal/analysis): six stdlib-only go/ast + go/types analyzers over
// a module-wide interprocedural summary layer, enforcing the invariants
// the compiler cannot — mapping determinism, typed-error discipline,
// the escape-based //himap:noalloc hot-path contract, sync-primitive
// hygiene, the cancellation-polling discipline below CompileRequest,
// and lock-set consistency of may-happen-in-parallel writes.
//
// Usage:
//
//	go run ./cmd/himaplint ./...                  # whole module (the CI gate)
//	go run ./cmd/himaplint ./internal/route       # one package
//	go run ./cmd/himaplint -json ./...            # machine-readable findings
//	go run ./cmd/himaplint -analyzer ctxflow,lockset ./...
//	go run ./cmd/himaplint -baseline himaplint.baseline.json ./...
//	go run ./cmd/himaplint -write-baseline himaplint.baseline.json ./...
//
// The baseline file is a ratchet: -baseline fails on any finding not
// recorded in it (new debt) and on any recorded finding that no longer
// reproduces (fixed debt must be removed via -write-baseline, so the
// file only ever shrinks). Entries are keyed by analyzer, root-relative
// file, and message — never line numbers — so unrelated edits do not
// invalidate the baseline.
//
// Exit status: 0 when clean (or when the baseline comparison is
// exact), 1 when any unsuppressed finding is new or any baseline entry
// is stale, 2 on usage errors or load/type-check failure. Suppress an
// accepted exception in place with
//
//	//lint:ignore <analyzer> <reason>
//
// on (or directly above) the flagged line; the analyzer name must be
// from the catalogue ("all" is rejected) and the reason is mandatory.
// Dead suppressions are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"himap/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// baselineFile is the on-disk ratchet format. Findings are sorted by
// (file, analyzer, message) so regeneration is deterministic and diffs
// review cleanly.
type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // root-relative, slash-separated
	Message  string `json:"message"`
}

func (e baselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("himaplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	analyzerList := fs.String("analyzer", "", "comma-separated analyzer names to run (default: all)")
	baselinePath := fs.String("baseline", "", "compare findings against this ratchet file; new or stale entries fail")
	writeBaseline := fs.String("write-baseline", "", "regenerate this ratchet file from the current findings")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: himaplint [-json] [-analyzer a,b] [-baseline file | -write-baseline file] <packages>\n\npatterns: ./... for the whole module, or package directories\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := analysis.All()
	if *analyzerList != "" {
		if *writeBaseline != "" {
			fmt.Fprintf(stderr, "himaplint: -write-baseline must record the full analyzer set; drop -analyzer\n")
			return 2
		}
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*analyzerList, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "himaplint: unknown analyzer %q (have %s)\n", name, analyzerNames(analysis.All()))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if *baselinePath != "" && *writeBaseline != "" {
		fmt.Fprintf(stderr, "himaplint: -baseline and -write-baseline are mutually exclusive\n")
		return 2
	}

	prog, err := analysis.Load(".")
	if err != nil {
		fmt.Fprintf(stderr, "himaplint: %v\n", err)
		return 2
	}
	match, err := packageFilter(prog, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "himaplint: %v\n", err)
		return 2
	}

	diags := analysis.Run(prog, analyzers, analysis.DefaultScope())
	kept := diags[:0]
	for _, d := range diags {
		if match(d.Pos.Filename) {
			kept = append(kept, d)
		}
	}
	diags = kept
	current := toEntries(prog.Root, diags)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "himaplint: %v\n", err)
			return 2
		}
	}

	if *writeBaseline != "" {
		data, err := json.MarshalIndent(baselineFile{Version: 1, Findings: current}, "", " ")
		if err != nil {
			fmt.Fprintf(stderr, "himaplint: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*writeBaseline, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "himaplint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "himaplint: wrote %d finding(s) to %s\n", len(current), *writeBaseline)
		return 0
	}

	if *baselinePath != "" {
		return compareBaseline(stdout, stderr, *baselinePath, current, analyzers)
	}

	if !*jsonOut {
		for _, d := range diags {
			rel := d
			if r, err := filepath.Rel(prog.Root, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Fprintln(stdout, rel)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "himaplint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// compareBaseline implements the ratchet: current findings missing from
// the baseline are new debt, baseline entries that no longer reproduce
// (for analyzers that ran) are stale and must be removed — the file may
// only shrink in step with the code.
func compareBaseline(stdout, stderr io.Writer, path string, current []baselineEntry, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "himaplint: %v\n", err)
		return 2
	}
	var bl baselineFile
	if err := json.Unmarshal(data, &bl); err != nil {
		fmt.Fprintf(stderr, "himaplint: baseline %s: %v\n", path, err)
		return 2
	}
	if bl.Version != 1 {
		fmt.Fprintf(stderr, "himaplint: baseline %s: unsupported version %d\n", path, bl.Version)
		return 2
	}
	ran := map[string]bool{analysis.SuppressName: true}
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	recorded := map[string]int{}
	for _, e := range bl.Findings {
		recorded[e.key()]++
	}
	var fresh []baselineEntry
	for _, e := range current {
		if recorded[e.key()] > 0 {
			recorded[e.key()]--
		} else {
			fresh = append(fresh, e)
		}
	}
	seen := map[string]int{}
	for _, e := range current {
		seen[e.key()]++
	}
	var stale []baselineEntry
	for _, e := range bl.Findings {
		if seen[e.key()] > 0 {
			seen[e.key()]--
		} else if ran[e.Analyzer] {
			stale = append(stale, e)
		}
	}

	for _, e := range fresh {
		fmt.Fprintf(stdout, "new finding not in baseline: %s: [%s] %s\n", e.File, e.Analyzer, e.Message)
	}
	for _, e := range stale {
		fmt.Fprintf(stdout, "stale baseline entry (fixed; refresh with -write-baseline): %s: [%s] %s\n", e.File, e.Analyzer, e.Message)
	}
	if len(fresh) > 0 || len(stale) > 0 {
		fmt.Fprintf(stderr, "himaplint: baseline mismatch: %d new, %d stale\n", len(fresh), len(stale))
		return 1
	}
	return 0
}

// toEntries renders diagnostics into baseline entries — root-relative
// slash paths, no line numbers — sorted by (file, analyzer, message).
func toEntries(root string, diags []analysis.Diagnostic) []baselineEntry {
	out := make([]baselineEntry, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if r, err := filepath.Rel(root, file); err == nil {
			file = r
		}
		out = append(out, baselineEntry{
			Analyzer: d.Analyzer,
			File:     filepath.ToSlash(file),
			Message:  d.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out
}

func analyzerNames(as []*analysis.Analyzer) string {
	var names []string
	for _, a := range as {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// packageFilter resolves CLI patterns to a filename predicate. "./..."
// (or "...") accepts everything; "./dir/..." accepts the subtree; a bare
// directory accepts files directly inside it.
func packageFilter(prog *analysis.Program, patterns []string) (func(string) bool, error) {
	type rule struct {
		dir     string
		subtree bool
	}
	var rules []rule
	for _, pat := range patterns {
		subtree := false
		if strings.HasSuffix(pat, "/...") {
			subtree = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				return func(string) bool { return true }, nil
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if _, err := os.Stat(abs); err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		rules = append(rules, rule{dir: abs, subtree: subtree})
	}
	return func(file string) bool {
		dir := filepath.Dir(file)
		for _, r := range rules {
			if dir == r.dir {
				return true
			}
			if r.subtree && strings.HasPrefix(dir, r.dir+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}, nil
}
