// Command himaplint runs the repository's custom static-analysis suite
// (internal/analysis): four stdlib-only go/ast + go/types analyzers that
// enforce the invariants the compiler cannot — mapping determinism,
// typed-error discipline, the //himap:noalloc hot-path contract, and
// sync-primitive hygiene.
//
// Usage:
//
//	go run ./cmd/himaplint ./...            # whole module (the CI gate)
//	go run ./cmd/himaplint ./internal/route # one package
//	go run ./cmd/himaplint -json ./...      # machine-readable findings
//
// Exit status: 0 when clean, 1 when any analyzer reports an unsuppressed
// diagnostic, 2 on load or type-check failure. Suppress an accepted
// exception in place with
//
//	//lint:ignore <analyzer> <reason>
//
// on (or directly above) the flagged line; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"himap/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: himaplint [-json] <packages>\n\npatterns: ./... for the whole module, or package directories\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "himaplint: %v\n", err)
		os.Exit(2)
	}

	match, err := packageFilter(prog, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "himaplint: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.Run(prog, analysis.All(), analysis.DefaultScope())
	kept := diags[:0]
	for _, d := range diags {
		if match(d.Pos.Filename) {
			kept = append(kept, d)
		}
	}
	diags = kept

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "himaplint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			rel := d
			if r, err := filepath.Rel(prog.Root, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "himaplint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// packageFilter resolves CLI patterns to a filename predicate. "./..."
// (or "...") accepts everything; "./dir/..." accepts the subtree; a bare
// directory accepts files directly inside it.
func packageFilter(prog *analysis.Program, patterns []string) (func(string) bool, error) {
	type rule struct {
		dir     string
		subtree bool
	}
	var rules []rule
	for _, pat := range patterns {
		subtree := false
		if strings.HasSuffix(pat, "/...") {
			subtree = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				return func(string) bool { return true }, nil
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if _, err := os.Stat(abs); err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		rules = append(rules, rule{dir: abs, subtree: subtree})
	}
	return func(file string) bool {
		dir := filepath.Dir(file)
		for _, r := range rules {
			if dir == r.dir {
				return true
			}
			if r.subtree && strings.HasPrefix(dir, r.dir+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}, nil
}
