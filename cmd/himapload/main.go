// Command himapload is the himapd load generator and soak harness: it
// drives a cluster of replicas (self-hosted in-process with -cluster,
// or external with -addrs) with a seeded kernel mix for a fixed
// duration and emits a BENCH_serve.json report — request counts,
// error-code breakdown, cache hit rate, forwarding counts, and latency
// percentiles (p50/p90/p99/max). The harness exits nonzero on any 5xx
// response, and with -require-hits also when the run produced zero
// cache hits, so CI can assert the serving layer's two core promises
// (never fail, reuse work) under sustained concurrent load.
//
// The workload is deterministic in shape: a fixed kernel/fabric mix
// visited by seeded PRNG, so two runs at the same seed issue the same
// request multiset. Latencies are wall-clock measurements and vary run
// to run — they are reported, never asserted on.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"himap/internal/serve"
)

// requestMix is the fixed workload: evaluation kernels at a small
// fabric, repeated often enough that a warm cache shows hits.
var requestMix = []string{
	`{"kernel":"GEMM","fabric":{"rows":4,"cols":4},"options":{}}`,
	`{"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{}}`,
	`{"kernel":"BICG","fabric":{"rows":4,"cols":4},"options":{}}`,
	`{"kernel":"ATAX","fabric":{"rows":4,"cols":4},"options":{}}`,
	`{"kernel":"SYRK","fabric":{"rows":4,"cols":4},"options":{}}`,
	`{"kernel":"CONV2D","fabric":{"rows":4,"cols":4},"options":{}}`,
	`{"kernel":"MVT","fabric":{"rows":5,"cols":5},"options":{}}`,
	`{"kernel":"GEMM","fabric":{"rows":5,"cols":5},"options":{"mapper":"conventional","block":[4,4,4],"seed":1}}`,
}

// report is the BENCH_serve.json document.
type report struct {
	Replicas    int     `json:"replicas"`
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`
	Seed        int64   `json:"seed"`

	Requests  int64            `json:"requests"`
	OK        int64            `json:"ok"`
	Errors    map[string]int64 `json:"errors,omitempty"` // by coarse wire code
	Status5xx int64            `json:"status_5xx"`

	Cache struct {
		Hits      int64   `json:"hits"` // memory + disk + coalesced
		Misses    int64   `json:"misses"`
		StoreHits int64   `json:"store_hits"`
		Coalesced int64   `json:"coalesced"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"cache"`
	Forwarded int64 `json:"forwarded"` // responses served by a relay peer

	LatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
}

func main() {
	cluster := flag.Int("cluster", 0, "self-host N in-process replicas (mutually exclusive with -addrs)")
	addrs := flag.String("addrs", "", "comma-separated base URLs of an external cluster")
	duration := flag.Duration("duration", 5*time.Second, "soak duration")
	concurrency := flag.Int("concurrency", 4, "concurrent client workers")
	seed := flag.Int64("seed", 1, "workload PRNG seed")
	out := flag.String("out", "BENCH_serve.json", "report path (- for stdout)")
	requireHits := flag.Bool("require-hits", false, "exit nonzero when the run produced zero cache hits")
	storeDir := flag.String("store", "", "disk store directory for self-hosted replicas (empty: memory only)")
	flag.Parse()

	if err := run(*cluster, *addrs, *duration, *concurrency, *seed, *out, *requireHits, *storeDir); err != nil {
		fmt.Fprintf(os.Stderr, "himapload: %v\n", err)
		os.Exit(1)
	}
}

func run(cluster int, addrs string, duration time.Duration, concurrency int, seed int64, out string, requireHits bool, storeDir string) error {
	var urls []string
	if cluster > 0 && addrs != "" {
		return fmt.Errorf("-cluster and -addrs are mutually exclusive")
	}
	switch {
	case cluster > 0:
		hosted, shutdown, err := selfHost(cluster, storeDir)
		if err != nil {
			return err
		}
		defer shutdown()
		urls = hosted
	case addrs != "":
		for _, a := range strings.Split(addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				urls = append(urls, a)
			}
		}
	default:
		return fmt.Errorf("one of -cluster or -addrs is required")
	}
	if concurrency < 1 {
		concurrency = 1
	}

	rep := soak(urls, duration, concurrency, seed)

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if out == "-" {
		os.Stdout.Write(body)
	} else {
		if err := os.WriteFile(out, body, 0o644); err != nil {
			return err
		}
		fmt.Printf("himapload: wrote %s\n", out)
	}
	fmt.Printf("himapload: %d requests, %d ok, %d 5xx, hit rate %.2f, %d forwarded, p99 %.1fms\n",
		rep.Requests, rep.OK, rep.Status5xx, rep.Cache.HitRate, rep.Forwarded, rep.LatencyMS.P99)

	if rep.Status5xx > 0 {
		return fmt.Errorf("%d responses were 5xx", rep.Status5xx)
	}
	if requireHits && rep.Cache.Hits == 0 {
		return fmt.Errorf("zero cache hits over %d requests", rep.Requests)
	}
	return nil
}

// selfHost starts n serve.Server replicas on loopback listeners that
// know each other as shard peers, and returns their base URLs plus a
// shutdown function. Listeners are allocated first so every replica's
// config can carry the full peer list.
func selfHost(n int, storeDir string) ([]string, func(), error) {
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	peers := urls
	if n == 1 {
		peers = nil // a single replica runs unsharded
	}
	servers := make([]*http.Server, n)
	for i, ln := range listeners {
		cfg := serve.Config{
			MaxInFlight: 4,
			Peers:       peers,
		}
		if peers != nil {
			cfg.Self = urls[i]
		}
		if storeDir != "" {
			cfg.StoreDir = fmt.Sprintf("%s/replica-%d", storeDir, i)
		}
		core, err := serve.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		servers[i] = &http.Server{Handler: core.Handler()}
		go servers[i].Serve(ln)
	}
	shutdown := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	return urls, shutdown, nil
}

// soak drives the cluster for the configured duration and aggregates
// the report. Each worker owns a PRNG derived from the seed, so the
// request sequence per worker is reproducible.
func soak(urls []string, duration time.Duration, concurrency int, seed int64) report {
	var (
		mu        sync.Mutex
		latencies []float64
		rep       report
	)
	rep.Replicas = len(urls)
	rep.Concurrency = concurrency
	rep.DurationS = duration.Seconds()
	rep.Seed = seed
	rep.Errors = map[string]int64{}

	deadline := time.Now().Add(duration) //lint:ignore determinism load-harness wall clock; never reaches a mapping
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			client := &http.Client{}
			for {
				now := time.Now() //lint:ignore determinism latency measurement; never reaches a mapping
				if now.After(deadline) {
					return
				}
				body := requestMix[rng.Intn(len(requestMix))]
				url := urls[rng.Intn(len(urls))]
				resp, err := client.Post(url+"/v1/compile", "application/json", strings.NewReader(body))
				elapsed := time.Since(now)
				mu.Lock()
				rep.Requests++
				if err != nil {
					rep.Status5xx++ // connection-level failure counts as a serving failure
					mu.Unlock()
					continue
				}
				latencies = append(latencies, float64(elapsed.Microseconds())/1000)
				switch {
				case resp.StatusCode == http.StatusOK:
					rep.OK++
				case resp.StatusCode >= 500:
					rep.Status5xx++
				}
				switch resp.Header.Get("X-Himap-Cache") {
				case "hit":
					rep.Cache.Hits++
				case "store":
					rep.Cache.Hits++
					rep.Cache.StoreHits++
				case "coalesced":
					rep.Cache.Hits++
					rep.Cache.Coalesced++
				case "miss":
					rep.Cache.Misses++
				}
				if resp.Header.Get("X-Himap-Peer") != "" {
					rep.Forwarded++
				}
				mu.Unlock()

				payload, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					code := errorCode(payload)
					mu.Lock()
					rep.Errors[code]++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	if rep.Cache.Hits+rep.Cache.Misses > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits) / float64(rep.Cache.Hits+rep.Cache.Misses)
	}
	sort.Float64s(latencies)
	rep.LatencyMS.P50 = percentile(latencies, 0.50)
	rep.LatencyMS.P90 = percentile(latencies, 0.90)
	rep.LatencyMS.P99 = percentile(latencies, 0.99)
	if len(latencies) > 0 {
		rep.LatencyMS.Max = latencies[len(latencies)-1]
	}
	return rep
}

// errorCode extracts the coarse wire code from an error body.
func errorCode(body []byte) string {
	var er struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(bytes.TrimSpace(body), &er); err != nil || er.Error.Code == "" {
		return "undecodable"
	}
	return er.Error.Code
}

// percentile reads the p-quantile from an ascending sample (nearest
// rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
