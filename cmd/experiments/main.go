// Command experiments regenerates the paper's tables and figures:
//
//	experiments -table1                 # Table I: kernel categorization
//	experiments -table2                 # Table II: unique iterations
//	experiments -fig7 -sizes 4,8,16,32  # Fig 7: U / MOPS / MOPS/mW vs BHC
//	experiments -fig8 -bs 2,4,8,16,32   # Fig 8: compile time vs block size
//	experiments -all
//
// Measured-vs-paper values are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"himap"
	"himap/internal/exp"
)

func parseInts(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bad integer list %q\n", s)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	var (
		table1  = flag.Bool("table1", false, "regenerate Table I")
		table2  = flag.Bool("table2", false, "regenerate Table II")
		fig7    = flag.Bool("fig7", false, "regenerate Figure 7")
		fig8    = flag.Bool("fig8", false, "regenerate Figure 8")
		env     = flag.Bool("envelope", false, "large-array (64x64) scalability run")
		all     = flag.Bool("all", false, "regenerate everything")
		sizes   = flag.String("sizes", "4,8,16,32", "CGRA sizes for Fig 7")
		bs      = flag.String("bs", "2,3,4,5,6,8,10,12,16,20,32,64", "block sizes for Fig 8")
		budget  = flag.Duration("budget", 20*time.Second, "baseline time budget per point")
		t2size  = flag.Int("table2size", 8, "CGRA size for Table II")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiment points (1 = sequential)")
		benchJS = flag.String("bench-json", "", "write the compile-cost benchmark report (wall-clock, allocs, peak II per kernel) to this JSON file, e.g. BENCH_compile.json")
		benchSz = flag.Int("bench-size", 8, "CGRA size for the -bench-json per-kernel rows")
		explore = flag.Bool("explore", false, "design-space sweep: rank the fabric candidate set per kernel by MOPS/mW")
		expSize = flag.Int("explore-size", 8, "array size for the -explore candidate set")
		gap     = flag.Bool("gap", false, "quality-gap table: exact vs HiMap vs SA II on small kernels")
		gapSize = flag.Int("gap-size", 4, "array size for the -gap instances")
		gapBS   = flag.Int("gap-block", 2, "uniform block size for the -gap exact/SA instances")
	)
	flag.Parse()
	if *all {
		*table1, *table2, *fig7, *fig8 = true, true, true, true
	}
	if !*table1 && !*table2 && !*fig7 && !*fig8 && !*env && !*explore && !*gap && *benchJS == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *table1 {
		fmt.Println(exp.TableI())
	}
	if *table2 {
		rows, err := exp.TableII(*t2size, exp.Config{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatTableII(rows))
	}
	if *fig7 {
		progress := func(p exp.Fig7Point) {
			fmt.Fprintf(os.Stderr, "fig7 point done: %s %dx%d (himap U %.1f%%, bhc U %.1f%% %s)\n",
				p.Kernel, p.Size, p.Size, p.HiMapU*100, p.BHCU*100, p.BHCNote)
		}
		pts, err := exp.Fig7(exp.Config{Sizes: parseInts(*sizes), BaselineBudget: *budget, Workers: *workers, Progress: progress})
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatFig7(pts))
	}
	if *fig8 {
		progress := func(p exp.Fig8Point) {
			fmt.Fprintf(os.Stderr, "fig8 point done: %s b=%d (himap %v ok=%v, bhc %v ok=%v %s)\n",
				p.Kernel, p.B, p.HiMapTime.Round(time.Millisecond), p.HiMapOK,
				p.BHCTime.Round(time.Millisecond), p.BHCOK, p.BHCNote)
		}
		pts, err := exp.Fig8(exp.Fig8Config{Bs: parseInts(*bs), BaselineBudget: *budget, Workers: *workers, Progress: progress})
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatFig8(pts))
	}
	if *env {
		pts, err := exp.Envelope([]int{64}, exp.Fig8Config{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatEnvelope(pts))
	}
	if *explore {
		pts := exp.Explore(exp.ExploreConfig{
			Fabrics: himap.ExploreFabrics(*expSize, *expSize),
			Workers: *workers,
		})
		fmt.Println(exp.FormatExplore(pts))
	}
	if *gap {
		rows, err := exp.ExactGap(*gapSize, *gapBS, *budget)
		if err != nil {
			fatal(err)
		}
		exp.WriteGapTable(os.Stdout, rows)
	}
	if *benchJS != "" {
		rep, err := exp.BenchCompile(*benchSz, *workers)
		if err != nil {
			fatal(err)
		}
		out, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*benchJS, out, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "experiments: compile-cost report written to %s\n", *benchJS)
		for _, row := range rep.Kernels {
			var stages []string
			for name := range row.StageMS {
				stages = append(stages, name)
			}
			sort.Slice(stages, func(i, j int) bool {
				if row.StageMS[stages[i]] != row.StageMS[stages[j]] {
					return row.StageMS[stages[i]] > row.StageMS[stages[j]]
				}
				return stages[i] < stages[j]
			})
			line := fmt.Sprintf("  %-6s %7.1f ms:", row.Kernel, row.WallMS)
			for _, name := range stages {
				line += fmt.Sprintf(" %s %.1f", name, row.StageMS[name])
			}
			fmt.Fprintln(os.Stderr, line)
		}
		for _, p := range rep.FabricSweep {
			fmt.Fprintf(os.Stderr, "  fabric %-6s %2dx%-2d %9.1f ms (route %.1f, unique %.1f, %d rounds)\n",
				p.Kernel, p.Size, p.Size, p.WallMS, p.RouteMS, p.UniqueMS, p.RouteRounds)
		}
		for _, p := range rep.ExploreSweep {
			if p.OK {
				fmt.Fprintf(os.Stderr, "  explore %-6s %-40s %6.1f MOPS/mW\n", p.Kernel, p.Fabric, p.Eff)
			} else {
				fmt.Fprintf(os.Stderr, "  explore %-6s %-40s %s\n", p.Kernel, p.Fabric, p.Fail)
			}
		}
		for _, p := range rep.ExactGap {
			cert := p.Certificate
			if !p.Proved {
				cert = "unproven"
			}
			fmt.Fprintf(os.Stderr, "  exact_gap %-6s exact II %d (%s, %.1f ms)  SA II %d  himap II %d\n",
				p.Kernel, p.ExactII, cert, p.ExactMS, p.SAII, p.HiMapII)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
