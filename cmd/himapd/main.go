// Command himapd serves the HiMap compiler over HTTP/JSON: POST
// /v1/compile (named or inline kernels, fabric config, per-request
// deadlines; Accept: text/event-stream selects the SSE stage-event
// stream), POST /v1/compile-batch (many compiles, one deadline, shared
// artifact memo), POST /v1/explore (one kernel ranked across a fabric
// design space by MOPS/mW), GET /v1/kernels, GET /healthz, and GET
// /metrics. Results are cached content-addressed in memory and —
// with -store — on disk across restarts (identical requests return
// byte-identical bodies, coalesced onto one compile when concurrent),
// admission is bounded (overflow answers 429), and -peers shards cache
// ownership across replicas by consistent hashing with single-hop
// forwarding. See DESIGN.md, "Compile service" and "Serving at scale".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"himap/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "pipeline workers per compile (0 = GOMAXPROCS)")
	maxInFlight := flag.Int("max-inflight", 2, "concurrently executing compiles")
	maxQueue := flag.Int("max-queue", 16, "requests allowed to wait beyond -max-inflight (negative: none)")
	cacheMB := flag.Int64("cache-mb", 64, "result cache budget in MiB (negative: disable)")
	storeDir := flag.String("store", "", "disk result-store directory (empty: memory cache only)")
	peers := flag.String("peers", "", "comma-separated base URLs of every cluster replica, this one included (empty: unsharded)")
	self := flag.String("self", "", "this replica's base URL; required with -peers and must appear in the list")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-request compile deadline")
	maxExplore := flag.Int("max-explore", 16, "fabric candidates allowed per /v1/explore request")
	maxExactCells := flag.Int("max-exact-cells", 128, "DFG cell budget accepted by the exact mapper per request")
	maxBatch := flag.Int("max-batch", 64, "items allowed per /v1/compile-batch request")
	flag.Parse()

	cfg := serve.Config{
		Workers:           *workers,
		MaxInFlight:       *maxInFlight,
		MaxQueue:          *maxQueue,
		CacheBytes:        *cacheMB << 20,
		StoreDir:          *storeDir,
		Self:              *self,
		DefaultTimeout:    *timeout,
		MaxExploreFabrics: *maxExplore,
		MaxExactCells:     *maxExactCells,
		MaxBatchItems:     *maxBatch,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	if err := run(cfg, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "himapd: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg serve.Config, addr string) error {
	core, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: core.Handler()}

	// SIGINT/SIGTERM start a graceful shutdown: stop accepting, let
	// running compiles finish (bounded), then exit 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("himapd: listening on http://%s\n", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("himapd: shutdown complete")
	return nil
}
