// Command himap maps a benchmark kernel onto a CGRA, optionally
// validates the mapping on the cycle-accurate simulator, and renders the
// resulting schedule. The -mapper flag selects the backend: the HiMap
// hierarchical algorithm (default), the conventional flat mapper, or the
// exact branch-and-bound mapper with optimality certificates.
//
// Usage:
//
//	himap -kernel GEMM -rows 8 -cols 8 -validate -render
//	himap -kernel BICG -rows 8 -cols 1                  # §II's linear array
//	himap -kernel MVT -mapper conventional -block 4     # conventional mapper
//	himap -kernel MVT -mapper exact -rows 4 -cols 4 -block 2  # proved-minimal II
//	himap -kernel GEMM -fabric torus                    # wrap-around links
//	himap -kernel FW -fabric torus -mem-pes boundary -validate
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"himap"
)

func main() {
	var (
		name     = flag.String("kernel", "GEMM", "kernel name (ADI, ATAX, BICG, MVT, GEMM, SYRK, FW, TTM, CONV2D, CONV3D, NW, DOITGEN, DOTPROD, RELU)")
		rows     = flag.Int("rows", 8, "CGRA rows")
		cols     = flag.Int("cols", 8, "CGRA columns")
		fabric   = flag.String("fabric", "mesh", "interconnect topology: "+himap.TopologyNames())
		memPEs   = flag.String("mem-pes", "all", "memory-capable PEs: "+himap.MemPolicyNames()+" (boundary = edge columns only)")
		bwClass  = flag.String("bandwidth", "unit", "link bandwidth class: "+himap.BandwidthNames())
		cost     = flag.String("cost", "balanced", "silicon cost corner for the power model: "+himap.CostClassNames())
		inner    = flag.Int("inner", 0, "inner block size b3.. for time-sequenced dimensions (0 = default; himap mapper only)")
		validate = flag.Bool("validate", false, "run cycle-accurate functional validation (3 pipelined blocks)")
		render   = flag.Bool("render", false, "render the space-time schedule")
		program  = flag.Bool("program", false, "print PE(0,0)'s instruction stream")
		itermap  = flag.Bool("itermap", false, "print the unique-iteration schedule map (Fig. 2 style)")
		bits     = flag.Bool("bitstream", false, "encode the configuration and report its size")
		mapper   = flag.String("mapper", "himap", "compilation backend: "+himap.BackendNames())
		block    = flag.Int("block", 0, "uniform block size for the conventional and exact mappers (0 = their defaults)")
		budget   = flag.Duration("exact-budget", 60*time.Second, "exact mapper search budget (0 = unbounded)")
		seed     = flag.Int64("seed", 42, "validation input seed")
		save     = flag.String("save", "", "write the mapping as JSON to this file")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "compilation worker count (1 = fully sequential; the mapping is identical either way)")
		trace    = flag.Bool("trace", false, "print one line per pipeline stage (wall time, attempt/wave, counters) to stderr")
	)
	flag.Parse()

	var tracer himap.Tracer
	if *trace {
		tracer = himap.NewTextTracer(os.Stderr)
	}

	k, err := himap.KernelByName(*name)
	if err != nil {
		fatal(err)
	}
	topo, err := himap.ParseTopology(*fabric)
	if err != nil {
		fatal(err)
	}
	mem, err := himap.ParseMemPolicy(*memPEs)
	if err != nil {
		fatal(err)
	}
	bw, err := himap.ParseBandwidth(*bwClass)
	if err != nil {
		fatal(err)
	}
	cc, err := himap.ParseCostClass(*cost)
	if err != nil {
		fatal(err)
	}
	fab := himap.Fabric{CGRA: himap.DefaultCGRA(*rows, *cols), Topology: topo, Mem: mem, Bandwidth: bw, Cost: cc}
	model := himap.PowerModelFor(fab)

	req := himap.Request{
		Kernel:   k,
		Fabric:   fab,
		Mapper:   himap.Mapper(*mapper),
		Options:  himap.Options{InnerBlock: *inner, Workers: *workers, Tracer: tracer},
		Baseline: himap.BaselineOptions{Seed: *seed, Workers: *workers, Tracer: tracer},
		Exact:    himap.ExactOptions{TimeBudget: *budget, Tracer: tracer},
	}
	if *block > 0 {
		req.Block = k.UniformBlock(*block)
	}

	res, err := himap.CompileRequest(context.Background(), req)
	if err != nil {
		fatal(err)
	}

	fmt.Println(res.Summary())
	switch {
	case res.Exact != nil:
		opt := res.Optimality
		if opt.ProvedMinimal {
			fmt.Printf("optimality: II %d proved minimal (certificate: %s, %d states explored)\n",
				res.Config.II, opt.Certificate, opt.Explored)
		} else {
			fmt.Printf("optimality: II %d not proved minimal (lower bound %d, %d states explored)\n",
				res.Config.II, opt.IILowerBound, opt.Explored)
		}
		fmt.Printf("solve time: %v (%d routed leaves, horizon %d)\n",
			res.Exact.Time, res.Exact.RoutedLeaves, opt.Horizon)
	case res.Conventional == nil:
		fmt.Printf("systolic mapping: %s\n", res.Mapping)
		fmt.Printf("compile time: %v (map %v, place %v, route %v; %d canonical nets, %d rounds)\n",
			res.Stats.Total, res.Stats.MapTime, res.Stats.PlaceTime, res.Stats.RouteTime,
			res.Stats.CanonicalNets, res.Stats.RouteRounds)
	}
	fmt.Printf("performance: %.0f MOPS, power: %.1f mW, efficiency: %.1f MOPS/mW\n",
		model.PerformanceMOPS(res.Config), model.PowerMW(res.Config), model.EfficiencyMOPSPerMW(res.Config))
	if res.Conventional == nil && res.Exact == nil {
		fmt.Printf("configuration memory: max %d unique words per PE (depth %d)\n",
			res.Config.MaxUniqueInstrs(), fab.ConfigDepth)
	}

	if *validate {
		if err := himap.ValidateConfig(res.Config, k, res.Block, 3, *seed); err != nil {
			fatal(err)
		}
		fmt.Println("functional validation: PASS (3 pipelined blocks, cycle-accurate)")
	}
	if *render {
		fmt.Print(himap.RenderSchedule(res.Config))
	}
	if *program {
		fmt.Print(himap.RenderPEProgram(res.Config, 0, 0))
	}
	if *itermap && res.Conventional == nil && res.Exact == nil {
		fmt.Print(res.IterationMap())
	}
	if *bits {
		bs, err := himap.EncodeBitstream(res.Config)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("bitstream: %d bytes total, max %d configuration words per PE\n",
			bs.TotalBytes(), bs.MaxWordsPerPE())
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := himap.SaveConfig(res.Config, f); err != nil {
			fatal(err)
		}
		fmt.Printf("mapping written to %s\n", *save)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "himap:", err)
	os.Exit(1)
}
