package himap_test

import (
	"context"
	"testing"
	"time"

	"himap"
)

// TestHiMapRespectsExactLowerBound regression-tests the heuristic flow
// against the exact solver's universal static bound: for every
// evaluation kernel, HiMap's achieved II at its own derived block can
// never undercut ExactLowerBound for that (kernel, block, fabric) —
// if it ever does, either the bound or the mapper is unsound.
func TestHiMapRespectsExactLowerBound(t *testing.T) {
	fab := himap.DefaultFabric(4, 4)
	for _, k := range himap.EvaluationKernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res, err := himap.CompileRequest(context.Background(), himap.Request{Kernel: k, Fabric: fab})
			if err != nil {
				t.Fatalf("CompileRequest(himap): %v", err)
			}
			lb, err := himap.ExactLowerBound(k, fab, res.Block)
			if err != nil {
				t.Fatalf("ExactLowerBound: %v", err)
			}
			if res.Config.II < lb {
				t.Errorf("HiMap II %d (block %v) undercuts the exact lower bound %d",
					res.Config.II, res.Block, lb)
			}
		})
	}
}

// TestConventionalRespectsProvedMinimum pins the oracle relation on one
// instance both backends share: the SA baseline can match but never
// beat an exact II that carries a proved-minimal certificate.
func TestConventionalRespectsProvedMinimum(t *testing.T) {
	k := himap.KernelMVT()
	fab := himap.DefaultFabric(4, 4)
	block := k.UniformBlock(2)

	eres, err := himap.CompileRequest(context.Background(), himap.Request{
		Kernel: k, Fabric: fab, Mapper: himap.MapperExact, Block: block,
		Exact: himap.ExactOptions{TimeBudget: 60 * time.Second},
	})
	if err != nil {
		t.Fatalf("CompileRequest(exact): %v", err)
	}
	if eres.Backend != string(himap.MapperExact) {
		t.Errorf("Backend = %q, want %q", eres.Backend, himap.MapperExact)
	}
	if eres.Optimality == nil || !eres.Optimality.ProvedMinimal {
		t.Fatalf("MVT 4x4 block 2 not proved minimal: %+v", eres.Optimality)
	}
	if eres.Exact == nil || eres.Exact.II != eres.Config.II {
		t.Errorf("Result.Exact inconsistent with Config: %+v vs II %d", eres.Exact, eres.Config.II)
	}

	cres, err := himap.CompileRequest(context.Background(), himap.Request{
		Kernel: k, Fabric: fab, Mapper: himap.MapperConventional, Block: block,
		Baseline: himap.BaselineOptions{Seed: 1},
	})
	if err != nil {
		t.Fatalf("CompileRequest(conventional): %v", err)
	}
	if cres.Config.II < eres.Config.II {
		t.Errorf("conventional II %d beats proved-minimal exact II %d — certificate unsound",
			cres.Config.II, eres.Config.II)
	}
}
