package himap_test

import (
	"errors"
	"testing"

	"himap"
)

// TestCompileFabricTorus pins the torus link provider end to end: every
// paper kernel must compile on the wrap-around fabric and pass
// cycle-accurate validation (the wrap links make every translation a
// graph automorphism, so replication works from any cluster position).
func TestCompileFabricTorus(t *testing.T) {
	fab := himap.Fabric{CGRA: himap.DefaultCGRA(8, 8), Topology: himap.TopoTorus}
	for _, name := range []string{"GEMM", "ATAX", "BICG"} {
		name := name
		t.Run(name, func(t *testing.T) {
			k, err := himap.KernelByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := compileFabric(k, fab, himap.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := himap.Validate(res, 3, 42); err != nil {
				t.Fatalf("torus mapping failed cycle-accurate validation: %v", err)
			}
		})
	}
}

// TestCompileFabricBoundaryMemTorus pins the heterogeneous-capability
// path: a memory kernel compiled onto a torus whose memory ports exist
// only on the boundary columns must place every load and store on a
// memory-capable PE and still pass cycle-accurate validation.
func TestCompileFabricBoundaryMemTorus(t *testing.T) {
	fab := himap.Fabric{CGRA: himap.DefaultCGRA(8, 8), Topology: himap.TopoTorus, Mem: himap.MemBoundary}
	k, err := himap.KernelByName("FW")
	if err != nil {
		t.Fatal(err)
	}
	res, err := compileFabric(k, fab, himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := res.Config
	for r := 0; r < cfg.Fabric.Rows; r++ {
		for c := 0; c < cfg.Fabric.Cols; c++ {
			for tt := 0; tt < cfg.II; tt++ {
				in := cfg.Slots[r][c][tt]
				if (in.MemRead.Active || in.MemWrite.Active) && !cfg.Fabric.MemCapable(r, c) {
					t.Fatalf("memory access on compute-only PE(%d,%d)", r, c)
				}
			}
		}
	}
	if err := himap.Validate(res, 3, 42); err != nil {
		t.Fatalf("boundary-mem torus mapping failed validation: %v", err)
	}
}

// TestMemPortInfeasibleTyped pins the failure mode: a kernel whose memory
// demand no capability-uniform sub-CGRA of the fabric can satisfy must
// fail with the typed ErrMemPortInfeasible class — a diagnosable error,
// never a panic or an untyped string.
func TestMemPortInfeasibleTyped(t *testing.T) {
	fab := himap.Fabric{CGRA: himap.DefaultCGRA(8, 8), Mem: himap.MemBoundary}
	k, err := himap.KernelByName("ATAX")
	if err != nil {
		t.Fatal(err)
	}
	_, err = compileFabric(k, fab, himap.Options{})
	if err == nil {
		t.Skip("ATAX unexpectedly mapped on mesh/boundary; no infeasible case to check")
	}
	if !errors.Is(err, himap.ErrMemPortInfeasible) {
		t.Fatalf("error does not wrap ErrMemPortInfeasible: %v", err)
	}
	var se *himap.StageError
	if !errors.As(err, &se) {
		t.Fatalf("error is not a StageError: %v", err)
	}
}
