package himap_test

import (
	"context"
	"sort"
	"strings"
	"testing"

	"himap"
)

// stubBackend is a registry probe; its Compile is never reached in these
// tests.
type stubBackend struct{ name himap.Mapper }

func (b stubBackend) Name() himap.Mapper              { return b.name }
func (b stubBackend) Capabilities() himap.BackendCaps { return himap.BackendCaps{} }
func (stubBackend) Compile(context.Context, himap.Request) (*himap.Result, error) {
	return nil, nil
}

// TestRegisterBackendDuplicateRejected pins the registry contract: a
// second registration under an existing name (and degenerate
// registrations) fail without disturbing the registry.
func TestRegisterBackendDuplicateRejected(t *testing.T) {
	before := himap.Backends()
	if err := himap.RegisterBackend(stubBackend{name: himap.MapperHiMap}); err == nil {
		t.Error("RegisterBackend(duplicate himap) succeeded, want error")
	}
	if err := himap.RegisterBackend(stubBackend{name: ""}); err == nil {
		t.Error("RegisterBackend(empty name) succeeded, want error")
	}
	if err := himap.RegisterBackend(nil); err == nil {
		t.Error("RegisterBackend(nil) succeeded, want error")
	}
	after := himap.Backends()
	if len(after) != len(before) {
		t.Errorf("failed registrations changed the registry: %v -> %v", before, after)
	}
}

// TestBackendsDeterministicOrder pins the registry's iteration order:
// sorted by name, stable across calls, containing the three built-ins.
func TestBackendsDeterministicOrder(t *testing.T) {
	names := himap.Backends()
	if !sort.SliceIsSorted(names, func(i, j int) bool { return names[i] < names[j] }) {
		t.Errorf("Backends() not sorted: %v", names)
	}
	again := himap.Backends()
	if len(again) != len(names) {
		t.Fatalf("Backends() unstable: %v then %v", names, again)
	}
	for i := range names {
		if names[i] != again[i] {
			t.Fatalf("Backends() unstable: %v then %v", names, again)
		}
	}
	seen := map[himap.Mapper]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []himap.Mapper{himap.MapperHiMap, himap.MapperConventional, himap.MapperExact} {
		if !seen[want] {
			t.Errorf("built-in backend %q missing from registry: %v", want, names)
		}
	}
	joined := himap.BackendNames()
	if !strings.Contains(joined, "conventional|exact|himap") {
		t.Errorf("BackendNames() = %q, want the sorted built-ins conventional|exact|himap", joined)
	}
}

// TestBackendForResolvesBuiltins covers lookup, the empty-name default,
// and the capability advertisements the serving layer relies on.
func TestBackendForResolvesBuiltins(t *testing.T) {
	def, ok := himap.BackendFor("")
	if !ok || def.Name() != himap.MapperHiMap {
		t.Fatalf(`BackendFor("") = %v, %v; want the himap backend`, def, ok)
	}
	if _, ok := himap.BackendFor("no-such-backend"); ok {
		t.Error(`BackendFor("no-such-backend") resolved, want miss`)
	}
	ex, ok := himap.BackendFor(himap.MapperExact)
	if !ok {
		t.Fatal("BackendFor(exact) missed")
	}
	if caps := ex.Capabilities(); !caps.Proves || !caps.UsesExact || !caps.UsesBlock {
		t.Errorf("exact capabilities %+v, want Proves, UsesExact, UsesBlock", caps)
	}
	hb, _ := himap.BackendFor(himap.MapperHiMap)
	if caps := hb.Capabilities(); caps.Proves || !caps.UsesOptions {
		t.Errorf("himap capabilities %+v, want UsesOptions without Proves", caps)
	}
}

// TestUnknownMapperEnumeratesBackends pins the unknown-mapper error to
// the sorted registry contents, so the message stays truthful as
// backends come and go.
func TestUnknownMapperEnumeratesBackends(t *testing.T) {
	_, err := himap.CompileRequest(context.Background(), himap.Request{
		Kernel: himap.KernelMVT(),
		Fabric: himap.DefaultFabric(4, 4),
		Mapper: "magic",
	})
	if err == nil {
		t.Fatal("unknown mapper compiled")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"magic"`) || !strings.Contains(msg, himap.BackendNames()) {
		t.Errorf("unknown-mapper error %q, want the name and the sorted registry %q", msg, himap.BackendNames())
	}
}

// conventionalFingerprints pins the conventional mapper's mappings for
// the eight evaluation kernels (8x8 default CGRA, uniform block 2,
// seed 1), captured immediately before the backend-registry refactor.
// Registry-routed compiles must reproduce them bit-identically.
var conventionalFingerprints = map[string]string{
	"ADI":  "d3ebe4ad32ac923b0c57db68a206a8c6e812419157169d401bb2c6867076aea9",
	"ATAX": "97c8e64ae15e24fd7cd0d45e47635a2c4e9698df6dc39420399d244ae97a2bca",
	"BICG": "b45d6152c7424c45f29fe0279d49d97b553cc42e59e4cd2fe2767ff98504f9de",
	"MVT":  "1d425a8d1d2504302086bbf6f6795fdbfc4b490fc0422f5949f78e76d21fd4eb",
	"GEMM": "196d5f96fdaa18529e05639c1d32c755a2885ac7d6a3667f255556e398880171",
	"SYRK": "32b21696208b369dff4a2c552853dec4b805b96cf454335bb2f28279d3abb489",
	"FW":   "25372105134eed458274c06702579bfa00ed28ee5e380088aa086650c09b99f2",
	"TTM":  "18cc32ad3684fdb7eccdd927d89fd7d55383afae21634344ec04692dd7558036",
}

// TestRegistryDifferentialFingerprints is the refactor's differential
// anchor: the himap and conventional flows, dispatched through the
// backend registry, must produce bit-identical mappings to the
// pre-refactor direct dispatch (defaultFabricFingerprints captured
// before the Fabric refactor, conventionalFingerprints captured before
// this one). Backend identity must be stamped on every result.
func TestRegistryDifferentialFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("16 full 8x8 compiles")
	}
	for _, k := range himap.EvaluationKernels() {
		k := k
		t.Run("himap/"+k.Name, func(t *testing.T) {
			res, err := himap.CompileRequest(context.Background(), himap.Request{
				Kernel: k,
				Fabric: himap.Fabric{CGRA: himap.DefaultCGRA(8, 8)},
				Mapper: himap.MapperHiMap,
			})
			if err != nil {
				t.Fatalf("CompileRequest(himap, %s): %v", k.Name, err)
			}
			if res.Backend != string(himap.MapperHiMap) {
				t.Errorf("Backend = %q, want %q", res.Backend, himap.MapperHiMap)
			}
			got := mappingFingerprint(res.Config, 8, 8)
			if want := defaultFabricFingerprints[k.Name]; got != want {
				t.Errorf("%s: himap fingerprint drifted through the registry\n got %s\nwant %s", k.Name, got, want)
			}
		})
		t.Run("conventional/"+k.Name, func(t *testing.T) {
			res, err := himap.CompileRequest(context.Background(), himap.Request{
				Kernel:   k,
				Fabric:   himap.Fabric{CGRA: himap.DefaultCGRA(8, 8)},
				Mapper:   himap.MapperConventional,
				Block:    k.UniformBlock(2),
				Baseline: himap.BaselineOptions{Seed: 1},
			})
			if err != nil {
				t.Fatalf("CompileRequest(conventional, %s): %v", k.Name, err)
			}
			if res.Backend != string(himap.MapperConventional) {
				t.Errorf("Backend = %q, want %q", res.Backend, himap.MapperConventional)
			}
			if res.Conventional == nil {
				t.Fatal("Result.Conventional is nil for the conventional backend")
			}
			got := mappingFingerprint(res.Config, 8, 8)
			if want := conventionalFingerprints[k.Name]; got != want {
				t.Errorf("%s: conventional fingerprint drifted through the registry\n got %s\nwant %s", k.Name, got, want)
			}
		})
	}
}
