package himap_test

import (
	"context"

	"himap"
)

// The legacy Compile/CompileFabric/CompileBaseline wrappers were removed
// from the public API; these test-local shims route the historical call
// shapes through the unified CompileRequest entry point so the long-lived
// regression suites read unchanged.

func compile(k *himap.Kernel, cg himap.CGRA, opts himap.Options) (*himap.Result, error) {
	return himap.CompileRequest(context.Background(),
		himap.Request{Kernel: k, Fabric: himap.Fabric{CGRA: cg}, Options: opts})
}

func compileFabric(k *himap.Kernel, fab himap.Fabric, opts himap.Options) (*himap.Result, error) {
	return himap.CompileRequest(context.Background(),
		himap.Request{Kernel: k, Fabric: fab, Options: opts})
}

func compileBaseline(k *himap.Kernel, cg himap.CGRA, block []int, opts himap.BaselineOptions) (*himap.BaselineResult, error) {
	return compileBaselineFabric(k, himap.Fabric{CGRA: cg}, block, opts)
}

func compileBaselineFabric(k *himap.Kernel, fab himap.Fabric, block []int, opts himap.BaselineOptions) (*himap.BaselineResult, error) {
	res, err := himap.CompileRequest(context.Background(), himap.Request{
		Kernel: k, Fabric: fab, Mapper: himap.MapperConventional,
		Block: block, Baseline: opts,
	})
	if err != nil {
		return nil, err
	}
	return res.Conventional, nil
}
