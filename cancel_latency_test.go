package himap_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"himap"
)

// pollCountCtx implements context.Context with an instrumented Err: it
// reports context.Canceled on every call and counts how often it is
// polled. Done returns nil, so the only way a loop can observe the
// cancellation is an explicit Err poll on its spine — exactly the
// discipline the ctxflow analyzer enforces. The counter then measures
// cancellation latency in polls: a compile that kept working after the
// cancellation would keep polling once per stride, so a small bound on
// the total count certifies that every loop bailed out within its
// first stride after the cancellation became visible.
type pollCountCtx struct {
	calls atomic.Int64
}

func (c *pollCountCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *pollCountCtx) Done() <-chan struct{}       { return nil }
func (c *pollCountCtx) Value(any) any               { return nil }
func (c *pollCountCtx) Err() error {
	c.calls.Add(1)
	return context.Canceled
}

// TestCancellationLatencyBounded compiles the FW kernel — the largest
// stock kernel, whose conventional anneal would otherwise run tens of
// thousands of moves per II attempt — under an already-canceled context
// and asserts the compile both fails with ErrCanceled and returns after
// a bounded number of cancellation polls. The bound is the number of
// polling sites (II loop, per-worker SA chains, seeding, routing
// rounds), not anything proportional to the workload, so a regression
// that drops a poll from a hot loop shows up here as a count explosion.
func TestCancellationLatencyBounded(t *testing.T) {
	const workers = 4
	ctx := &pollCountCtx{}
	res, err := himap.CompileRequest(ctx, himap.Request{
		Kernel: himap.KernelFW(),
		Fabric: himap.DefaultFabric(4, 4),
		Mapper: himap.MapperConventional,
		Options: himap.Options{
			Workers: workers,
			Memo:    himap.NewMemo(), // cold cache: the canceled stages really run
		},
	})
	if err == nil {
		t.Fatalf("compile committed a mapping despite cancellation: %v", res.Summary())
	}
	if !errors.Is(err, himap.ErrCanceled) {
		t.Fatalf("errors.Is(err, ErrCanceled) = false: %v", err)
	}
	// Every polling site observes the cancellation on its first poll and
	// returns; a generous per-site allowance still stays far below even
	// one fully-annealed II attempt's poll count.
	if got, limit := ctx.calls.Load(), int64(16*(workers+2)); got == 0 || got > limit {
		t.Fatalf("canceled compile polled ctx.Err %d times, want 1..%d", got, limit)
	}
}
