// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (regenerating the underlying measurement), plus
// micro-benchmarks of the pipeline stages. Run with
//
//	go test -bench=. -benchmem
//
// cmd/experiments produces the full formatted tables and figures;
// EXPERIMENTS.md records paper-vs-measured values.
package himap_test

import (
	"fmt"
	"testing"
	"time"

	"himap"
	"himap/internal/arch"
	"himap/internal/baseline"
	"himap/internal/exp"
	core "himap/internal/himap"
	"himap/internal/ir"
	"himap/internal/kernel"
	"himap/internal/mrrg"
	"himap/internal/power"
	"himap/internal/route"
	"himap/internal/sim"
)

// ----------------------------------------------------------------- Table I

// BenchmarkTable1Categorize regenerates Table I's categorization.
func BenchmarkTable1Categorize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cat := kernel.Categorize(kernel.Catalog())
		if len(cat) != 5 {
			b.Fatal("bad categorization")
		}
	}
}

// ---------------------------------------------------------------- Table II

// BenchmarkTable2UniqueIters regenerates Table II's unique-iteration
// identification for every kernel.
func BenchmarkTable2UniqueIters(b *testing.B) {
	for _, k := range kernel.Evaluation() {
		b.Run(k.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Compile(k, arch.Default(4, 4), core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.UniqueIters == 0 {
					b.Fatal("no unique iterations")
				}
			}
		})
	}
}

// ------------------------------------------------------------------ Fig 7

// BenchmarkFig7HiMap regenerates Figure 7's HiMap series: utilization,
// MOPS, and MOPS/mW per (kernel, CGRA size). The metrics are reported as
// custom benchmark units.
func BenchmarkFig7HiMap(b *testing.B) {
	model := power.Default40nm()
	for _, k := range kernel.Evaluation() {
		for _, size := range []int{4, 8, 16} {
			b.Run(fmt.Sprintf("%s/%dx%d", k.Name, size, size), func(b *testing.B) {
				b.ReportAllocs()
				var res *core.Result
				var err error
				for i := 0; i < b.N; i++ {
					res, err = core.Compile(k, arch.Default(size, size), core.Options{})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.Utilization*100, "util%")
				b.ReportMetric(model.PerformanceMOPS(res.Config), "MOPS")
				b.ReportMetric(model.EfficiencyMOPSPerMW(res.Config), "MOPS/mW")
			})
		}
	}
}

// BenchmarkFig7Baseline regenerates Figure 7's BHC series on the sizes
// where the conventional mapper completes within a bench-friendly budget.
func BenchmarkFig7Baseline(b *testing.B) {
	model := power.Default40nm()
	cases := []struct {
		k     *kernel.Kernel
		size  int
		block int
	}{
		{kernel.BICG(), 4, 4},
		{kernel.MVT(), 4, 4},
		{kernel.GEMM(), 4, 3},
		{kernel.ADI(), 8, 4},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("%s/%dx%d", c.k.Name, c.size, c.size), func(b *testing.B) {
			b.ReportAllocs()
			var res *baseline.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = baseline.Compile(c.k, arch.Default(c.size, c.size),
					c.k.UniformBlock(c.block), baseline.Options{Seed: 1, TimeBudget: 30 * time.Second})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Utilization*100, "util%")
			b.ReportMetric(model.PerformanceMOPS(res.Config), "MOPS")
			b.ReportMetric(model.EfficiencyMOPSPerMW(res.Config), "MOPS/mW")
		})
	}
}

// ------------------------------------------------------------------ Fig 8

// BenchmarkFig8HiMapCompileTime regenerates Figure 8's HiMap compilation
// time series: per-iteration time IS the figure's measurement. The paper's
// observation — compile time roughly flat in block size because the
// number of unique iterations is constant — shows up directly in the
// ns/op column.
func BenchmarkFig8HiMapCompileTime(b *testing.B) {
	for _, k := range []*kernel.Kernel{kernel.MVT(), kernel.GEMM(), kernel.TTM()} {
		for _, size := range []int{4, 8, 16, 32} {
			b.Run(fmt.Sprintf("%s/b%d", k.Name, size), func(b *testing.B) {
				b.ReportAllocs()
				inner := size
				if k.Dim >= 4 && inner > 8 {
					inner = 8
				}
				for i := 0; i < b.N; i++ {
					if _, err := core.Compile(k, arch.Default(size, size), core.Options{InnerBlock: inner}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig8BaselineCompileTime regenerates the BHC series up to its
// wall (block sizes the conventional mapper still closes).
func BenchmarkFig8BaselineCompileTime(b *testing.B) {
	for _, c := range []struct {
		k *kernel.Kernel
		b int
	}{
		{kernel.MVT(), 2}, {kernel.MVT(), 4},
		{kernel.GEMM(), 2}, {kernel.GEMM(), 3},
		{kernel.TTM(), 2},
	} {
		b.Run(fmt.Sprintf("%s/b%d", c.k.Name, c.b), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.Compile(c.k, arch.Default(c.b, c.b),
					c.k.UniformBlock(c.b), baseline.Options{Seed: 1, TimeBudget: 60 * time.Second}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Wall demonstrates the baseline's hard failure beyond the
// node wall (near-instant rejection, matching "BHC fails to find a valid
// mapping beyond the block size of 8, 5, and 4").
func BenchmarkFig8Wall(b *testing.B) {
	k := kernel.GEMM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := baseline.Compile(k, arch.Default(8, 8), k.UniformBlock(8), baseline.Options{})
		if err == nil {
			b.Fatal("expected the node wall")
		}
	}
}

// ----------------------------------------------------- pipeline micro-benches

// BenchmarkCompileEndToEnd times the full HiMap flow per kernel on 8x8.
func BenchmarkCompileEndToEnd(b *testing.B) {
	for _, k := range kernel.Evaluation() {
		b.Run(k.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(k, arch.Default(8, 8), core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileMemoized measures a recompilation against a warmed
// artifact memo: the generic IDFG, the sub-CGRA mapping search, and the
// block unroll (isdg-build) all come from the content-keyed cache, so
// only the per-attempt placement/routing work runs. TTM is the kernel
// where those front artifacts are the largest share of the compile.
// Compare against BenchmarkCompileCold for the memoization speedup.
func BenchmarkCompileMemoized(b *testing.B) {
	k := kernel.TTM()
	cg := arch.Default(8, 8)
	memo := core.NewMemo()
	if _, err := core.Compile(k, cg, core.Options{Workers: 1, Memo: memo}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(k, cg, core.Options{Workers: 1, Memo: memo}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileCold is the control for BenchmarkCompileMemoized: the
// same compile with a fresh memo every iteration, so every artifact is
// rebuilt from the kernel specification.
func BenchmarkCompileCold(b *testing.B) {
	k := kernel.TTM()
	cg := arch.Default(8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(k, cg, core.Options{Workers: 1, Memo: core.NewMemo()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDFGUnroll times block unrolling (front-end substrate).
func BenchmarkDFGUnroll(b *testing.B) {
	k := kernel.GEMM()
	block := []int{16, 16, 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := k.BuildDFG(block)
		if err != nil {
			b.Fatal(err)
		}
		if d.NumCompute() != 2*16*16*16 {
			b.Fatal("bad unroll")
		}
	}
}

// BenchmarkGolden times the reference executor.
func BenchmarkGolden(b *testing.B) {
	k := kernel.GEMM()
	block := []int{16, 16, 16}
	inputs := k.DefaultInputs(block, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := k.Golden(block, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate times cycle-accurate execution (cycles/op reported).
func BenchmarkSimulate(b *testing.B) {
	res, err := core.Compile(kernel.GEMM(), arch.Default(8, 8), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := sim.New(res.Config)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidatePipelined times full multi-block validation.
func BenchmarkValidatePipelined(b *testing.B) {
	k := kernel.BICG()
	res, err := core.Compile(k, arch.Default(4, 4), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Validate(res.Config, k, res.Block, 3, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPI exercises the facade end to end.
func BenchmarkPublicAPI(b *testing.B) {
	k := himap.KernelMVT()
	cg := himap.DefaultCGRA(4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := compile(k, cg, himap.Options{})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkUniqueIdentificationScaling shows the unique-iteration pass is
// linear in block volume while yielding a constant class count.
func BenchmarkUniqueIdentificationScaling(b *testing.B) {
	for _, inner := range []int{4, 16} {
		b.Run(fmt.Sprintf("inner%d", inner), func(b *testing.B) {
			b.ReportAllocs()
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Compile(kernel.GEMM(), arch.Default(4, 4), core.Options{InnerBlock: inner})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.UniqueIters), "unique")
			b.ReportMetric(float64(ir.BoxSize(res.Block)), "iterations")
		})
	}
}

// BenchmarkExpTableII regenerates the full Table II measurement.
func BenchmarkExpTableII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.TableII(4, exp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatal("bad table")
		}
	}
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblationNegotiation quantifies the SPR-style cost escalation
// (DESIGN.md design choice): utilization with and without negotiation
// rounds, reported as a custom metric.
func BenchmarkAblationNegotiation(b *testing.B) {
	for _, rounds := range []int{1, 8} {
		b.Run(fmt.Sprintf("rounds%d", rounds), func(b *testing.B) {
			b.ReportAllocs()
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Compile(kernel.FW(), arch.Default(4, 4), core.Options{MaxRouteRounds: rounds})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Utilization*100, "util%")
		})
	}
}

// BenchmarkAblationRelayPolicy compares crossbar/memory relay pins
// against register-only relays.
func BenchmarkAblationRelayPolicy(b *testing.B) {
	for _, pol := range []core.RelayPolicy{core.RelayAuto, core.RelayRegistersOnly} {
		name := "auto"
		if pol == core.RelayRegistersOnly {
			name = "registers-only"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Compile(kernel.GEMM(), arch.Default(4, 4), core.Options{RelayPolicy: pol})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Utilization*100, "util%")
			b.ReportMetric(power.MeasureActivity(res.Config).RF, "RFactivity")
		})
	}
}

// ------------------------------------------------------- router hot path

// BenchmarkRouteSinkHotPath isolates the negotiated-congestion router's
// inner loop: one net fanned out to three sinks at increasing space-time
// distance on an 8x8 MRRG, with the session's occupancy reset (history
// kept) between iterations — the exact reuse pattern of the routing
// rounds in step 3. allocs/op is the hot-path discipline metric: the
// generation-stamped scratch arrays keep steady-state Dijkstra runs free
// of per-search map and heap-interface allocations. The benchmark is
// also the regression gate: after timing, it measures steady-state
// allocations on the warmed session and fails outright if they exceed
// the floor recorded when the lean hot path landed (PR 1) — 29 per
// 3-sink net (net bookkeeping, per-sink Path, OperandTargets slices),
// with zero coming from the Dijkstra search itself.
const routeSinkAllocFloor = 29

func BenchmarkRouteSinkHotPath(b *testing.B) {
	g := mrrg.New(arch.DefaultFabric(8, 8), 8)
	s := route.NewSession(g)
	src := mrrg.Node{T: 0, R: 0, C: 0, Class: mrrg.ClassFU}
	sinks := [][3]int{{4, 2, 2}, {8, 4, 4}, {14, 7, 7}}
	iter := func() {
		s.ResetKeepHistory()
		s.Reserve(src)
		net := s.NewNet(src)
		for _, t := range sinks {
			if _, _, err := s.RouteSink(net, g.OperandTargets(t[0], t[1], t[2])); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter()
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(10, iter); allocs > routeSinkAllocFloor {
		b.Fatalf("router hot path regressed: %.0f allocs per routed net, floor is %d", allocs, routeSinkAllocFloor)
	}
}

// BenchmarkSessionResetKeepHistory measures the between-rounds occupancy
// reset on a large (16x16, II 8) session: it must reuse the session's
// dense occupancy storage (0 allocs/op), not reallocate it, so the
// negotiation loop's per-round cost is a clear, not a malloc.
func BenchmarkSessionResetKeepHistory(b *testing.B) {
	g := mrrg.New(arch.DefaultFabric(16, 16), 8)
	s := route.NewSession(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetKeepHistory()
	}
}

// BenchmarkAblationDepthSlack measures the value of MAP's fallback depth
// exploration.
func BenchmarkAblationDepthSlack(b *testing.B) {
	for _, slack := range []int{1, 3} {
		b.Run(fmt.Sprintf("slack%d", slack), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(kernel.FW(), arch.Default(4, 4), core.Options{DepthSlack: slack}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
