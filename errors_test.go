package himap_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"himap"
)

// These tests pin the error taxonomy of the staged pipeline through the
// public API: every failure class is reachable, carries its sentinel
// through errors.Is, and aggregates into a *CompileError recoverable with
// errors.As. Each test uses a fresh Memo so the shared artifact cache
// cannot leak state between constructions.

func freshOpts() himap.Options {
	return himap.Options{Workers: 1, Memo: himap.NewMemo()}
}

// TestErrNoSubMapping: a 1×1 CGRA whose configuration depth cannot hold
// one iteration's compute ops admits no IDFG → sub-CGRA mapping at all,
// so the front pipeline fails in idfg-map before any attempt runs.
func TestErrNoSubMapping(t *testing.T) {
	k := himap.KernelBICG()
	cg := himap.DefaultCGRA(1, 1)
	cg.ConfigDepth = 2
	_, err := compile(k, cg, freshOpts())
	if err == nil {
		t.Fatal("expected failure on depth-2 1x1 CGRA")
	}
	if !errors.Is(err, himap.ErrNoSubMapping) {
		t.Fatalf("want ErrNoSubMapping, got %v", err)
	}
	var ce *himap.CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("errors.As must recover *CompileError from %v", err)
	}
	if ce.Attempts != 0 {
		t.Errorf("front-stage failure must report 0 attempts, got %d", ce.Attempts)
	}
	if ce.Primary == nil || ce.Primary.Stage != "idfg-map" {
		t.Errorf("primary failure should be stage idfg-map, got %+v", ce.Primary)
	}
}

// TestErrBlockTooSmall: on a full-depth 1×1 CGRA sub-mappings exist, but
// every derived block collapses below the kernel's minimum extent.
func TestErrBlockTooSmall(t *testing.T) {
	_, err := compile(himap.KernelBICG(), himap.DefaultCGRA(1, 1), freshOpts())
	if err == nil {
		t.Fatal("expected failure on 1x1 CGRA")
	}
	if !errors.Is(err, himap.ErrBlockTooSmall) {
		t.Fatalf("want ErrBlockTooSmall, got %v", err)
	}
}

// TestErrBlockPinConflict: forcing CONV2D's pinned window dimensions onto
// the VSA space axes asks for block extents that contradict the pins.
func TestErrBlockPinConflict(t *testing.T) {
	opts := freshOpts()
	opts.ForceScheme = &himap.Scheme{SpaceDims: []int{2, 3}, TimePerm: []int{0, 1}, Skew: []int{0, 0}}
	_, err := compile(himap.KernelConv2D(), himap.DefaultCGRA(8, 8), opts)
	if err == nil {
		t.Fatal("expected pin conflict")
	}
	if !errors.Is(err, himap.ErrBlockPinConflict) {
		t.Fatalf("want ErrBlockPinConflict, got %v", err)
	}
	if errors.Is(err, himap.ErrRouteCongested) {
		t.Error("must not match an unrelated class")
	}
}

// TestErrSchemeInfeasible: a forced scheme that does not cover the kernel
// dimensions is rejected by the block-derive shape guard as infeasible
// rather than panicking inside Realize.
func TestErrSchemeInfeasible(t *testing.T) {
	opts := freshOpts()
	opts.ForceScheme = &himap.Scheme{SpaceDims: []int{0, 1}, Skew: []int{0, 1}}
	_, err := compile(himap.KernelGEMM(), himap.DefaultCGRA(8, 8), opts)
	if err == nil {
		t.Fatal("expected infeasible scheme")
	}
	if !errors.Is(err, himap.ErrSchemeInfeasible) {
		t.Fatalf("want ErrSchemeInfeasible, got %v", err)
	}
	var se *himap.StageError
	if !errors.As(err, &se) {
		t.Fatalf("errors.As must recover *StageError from %v", err)
	}
	if se.Stage != "block-derive" || se.Kernel != "GEMM" {
		t.Errorf("stage context not stamped: %+v", se)
	}
}

// TestErrRouteCongested: restricting the negotiation to a single round on
// FW's broadcast-heavy traffic leaves oversubscribed routing resources.
func TestErrRouteCongested(t *testing.T) {
	opts := freshOpts()
	opts.MaxRouteRounds = 1
	opts.MaxSubMaps = 1
	opts.MaxSchemes = 1
	_, err := compile(himap.KernelFW(), himap.DefaultCGRA(8, 8), opts)
	if err == nil {
		t.Skip("FW routed in one round; congestion construction no longer applies")
	}
	if !errors.Is(err, himap.ErrRouteCongested) {
		t.Fatalf("want ErrRouteCongested, got %v", err)
	}
	var ce *himap.CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("errors.As must recover *CompileError from %v", err)
	}
	if ce.Attempts != 1 {
		t.Errorf("single-candidate search must report 1 attempt, got %d", ce.Attempts)
	}
}

// TestCompileErrorDeterministic pins the failure-path contract: when every
// attempt fails, the aggregated error — primary failure, attempt count,
// and rendered message — is identical for any Workers value, because the
// primary is always the lowest-ranked attempt's failure, not whichever
// goroutine lost last.
func TestCompileErrorDeterministic(t *testing.T) {
	bad := &himap.Scheme{SpaceDims: []int{0, 1}, Skew: []int{0, 1}}
	run := func(workers int) error {
		opts := himap.Options{Workers: workers, Memo: himap.NewMemo(), ForceScheme: bad}
		_, err := compile(himap.KernelGEMM(), himap.DefaultCGRA(8, 8), opts)
		return err
	}
	e1, e4 := run(1), run(4)
	if e1 == nil || e4 == nil {
		t.Fatal("expected both runs to fail")
	}
	if e1.Error() != e4.Error() {
		t.Errorf("failure message depends on Workers:\n  W=1: %s\n  W=4: %s", e1, e4)
	}
	var c1, c4 *himap.CompileError
	if !errors.As(e1, &c1) || !errors.As(e4, &c4) {
		t.Fatal("both errors must be *CompileError")
	}
	if c1.Attempts != c4.Attempts {
		t.Errorf("attempt count differs: %d vs %d", c1.Attempts, c4.Attempts)
	}
	if c1.Attempts < 2 {
		t.Fatalf("construction too weak: need multiple failing attempts, got %d", c1.Attempts)
	}
	if c1.Primary.Attempt != 1 {
		t.Errorf("primary must be the lowest-ranked attempt, got attempt %d", c1.Primary.Attempt)
	}
	if !strings.Contains(e1.Error(), "GEMM") || !strings.Contains(e1.Error(), "8x8") {
		t.Errorf("message must carry kernel and CGRA context: %s", e1)
	}
}

// TestKernelPinBelowMinimumRejected: a FixedBlock entry below MinBlock is
// an internally contradictory specification; Kernel.Validate rejects it
// with the typed pin-conflict class, and Compile surfaces the same class
// before any mapping work starts.
func TestKernelPinBelowMinimumRejected(t *testing.T) {
	k := *himap.KernelGEMM()
	k.MinBlock = 4
	k.FixedBlock = []int{2}
	if err := k.Validate(); !errors.Is(err, himap.ErrBlockPinConflict) {
		t.Fatalf("Kernel.Validate: want ErrBlockPinConflict, got %v", err)
	}
	_, err := compile(&k, himap.DefaultCGRA(8, 8), freshOpts())
	if !errors.Is(err, himap.ErrBlockPinConflict) {
		t.Fatalf("Compile: want ErrBlockPinConflict, got %v", err)
	}
}

// TestErrConfigInvalidFromLoadConfig: every rejection in the JSON config
// decoder — malformed syntax, unknown fields, bad version, bad topology,
// inconsistent caps grid — carries ErrConfigInvalid, so callers dispatch
// on the class without parsing messages.
func TestErrConfigInvalidFromLoadConfig(t *testing.T) {
	cases := map[string]string{
		"malformed":   `{"version": 1,`,
		"unknown":     `{"version": 1, "bogus_field": true}`,
		"bad version": `{"version": 99}`,
		"topology":    `{"version": 2, "rows": 4, "cols": 4, "topology": "hypercube"}`,
		"mem policy":  `{"version": 2, "rows": 4, "cols": 4, "mem_policy": "everywhere-but-corners"}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := himap.LoadConfig(strings.NewReader(in))
			if err == nil {
				t.Fatal("expected decode failure")
			}
			if !errors.Is(err, himap.ErrConfigInvalid) {
				t.Fatalf("want ErrConfigInvalid, got %v", err)
			}
		})
	}
}

// TestErrConfigInvalidFromParsers: the string parsers reject unknown
// names with the same class as the decoder.
func TestErrConfigInvalidFromParsers(t *testing.T) {
	if _, err := himap.ParseTopology("hypercube"); !errors.Is(err, himap.ErrConfigInvalid) {
		t.Errorf("ParseTopology: want ErrConfigInvalid, got %v", err)
	}
	if _, err := himap.ParseMemPolicy("everywhere-but-corners"); !errors.Is(err, himap.ErrConfigInvalid) {
		t.Errorf("ParseMemPolicy: want ErrConfigInvalid, got %v", err)
	}
}

// TestErrConfigInvalidFromValidate: the simulator's precondition checks
// are typed too — a non-positive block count is a caller bug surfaced as
// ErrConfigInvalid, not a panic or an anonymous error.
func TestErrConfigInvalidFromValidate(t *testing.T) {
	res, err := compile(himap.KernelGEMM(), himap.DefaultCGRA(4, 4), freshOpts())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if verr := himap.Validate(res, 0, 7); !errors.Is(verr, himap.ErrConfigInvalid) {
		t.Fatalf("Validate(nblocks=0): want ErrConfigInvalid, got %v", verr)
	}
}

// TestBaselineTypedErrors: the conventional mapper's failure modes are
// recoverable through the public aliases — the scalability wall and the
// wall-clock budget each surface as a typed struct via errors.As.
func TestBaselineTypedErrors(t *testing.T) {
	k := himap.KernelGEMM()
	cg := himap.DefaultCGRA(4, 4)
	block := []int{2, 2, 2}

	_, err := compileBaseline(k, cg, block, himap.BaselineOptions{MaxNodes: 1})
	var tooLarge himap.BaselineTooLargeError
	if !errors.As(err, &tooLarge) {
		t.Fatalf("want BaselineTooLargeError, got %v", err)
	}
	if tooLarge.Max != 1 {
		t.Errorf("wall not carried: %+v", tooLarge)
	}

	_, err = compileBaseline(k, cg, block, himap.BaselineOptions{TimeBudget: time.Nanosecond})
	var timeout himap.BaselineTimeoutError
	if !errors.As(err, &timeout) {
		t.Fatalf("want BaselineTimeoutError, got %v", err)
	}
	if timeout.Budget != time.Nanosecond {
		t.Errorf("budget not carried: %+v", timeout)
	}
}

// TestCompileErrorUnwrapExposesStages: the aggregate exposes each stage's
// best-ranked failure, so callers can match any class that occurred.
func TestCompileErrorUnwrapExposesStages(t *testing.T) {
	opts := freshOpts()
	opts.ForceScheme = &himap.Scheme{SpaceDims: []int{0, 1}, Skew: []int{0, 1}}
	_, err := compile(himap.KernelGEMM(), himap.DefaultCGRA(8, 8), opts)
	var ce *himap.CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CompileError, got %v", err)
	}
	if len(ce.Stages) == 0 {
		t.Fatal("CompileError must aggregate per-stage failures")
	}
	for _, se := range ce.Stages {
		if se.Stage == "" {
			t.Errorf("aggregated stage failure missing stage name: %+v", se)
		}
	}
}

// TestNilKernelTypedError pins satellite #1 of the backend-registry
// refactor: a nil Request.Kernel fails with a typed diag error wrapping
// ErrInvalidRequest — never a panic — for every registered backend and
// for the empty (default) mapper, before any backend code runs.
func TestNilKernelTypedError(t *testing.T) {
	mappers := append([]himap.Mapper{""}, himap.Backends()...)
	for _, m := range mappers {
		m := m
		t.Run(string(m), func(t *testing.T) {
			_, err := himap.CompileRequest(context.Background(), himap.Request{
				Mapper: m,
				Fabric: himap.DefaultFabric(4, 4),
			})
			if err == nil {
				t.Fatal("nil kernel compiled")
			}
			if !errors.Is(err, himap.ErrInvalidRequest) {
				t.Errorf("error %v does not wrap ErrInvalidRequest", err)
			}
			var se *himap.StageError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *StageError", err)
			}
			if se.Stage != "request" {
				t.Errorf("stage %q, want %q", se.Stage, "request")
			}
		})
	}
}
