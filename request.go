package himap

import (
	"context"
	"fmt"

	"himap/internal/baseline"
	core "himap/internal/himap"
)

// Mapper selects which compilation flow a Request runs.
type Mapper string

const (
	// MapperHiMap is the hierarchical flow of the paper (Algorithm 1):
	// IDFG → sub-CGRA mapping, systolic scheme search, place, route,
	// replicate. The zero Mapper value means MapperHiMap.
	MapperHiMap Mapper = "himap"
	// MapperConventional is the flat DFG → MRRG simulated-annealing
	// mapper the paper evaluates against (the "BHC" stand-in).
	MapperConventional Mapper = "conventional"
)

// Request is the unified compilation request: one kernel, one target
// fabric, one mapper, and that mapper's tuning options. It is the single
// input type of CompileRequest; the legacy Compile, CompileFabric,
// CompileBaseline, and CompileBaselineFabric entry points are thin
// wrappers constructing a Request.
type Request struct {
	// Kernel is the loop kernel to map. Required.
	Kernel *Kernel
	// Fabric is the target architecture. Fabric{CGRA: cg} reproduces the
	// classic mesh/all-memory model.
	Fabric Fabric
	// Mapper selects the flow; the zero value is MapperHiMap.
	Mapper Mapper
	// Options tunes the HiMap flow (ignored by MapperConventional).
	Options Options
	// Block is the unrolled block extent per loop dimension, used only by
	// MapperConventional (the HiMap flow derives its own block from the
	// systolic scheme). Nil defaults to Kernel.UniformBlock(4).
	Block []int
	// Baseline tunes the conventional flow (ignored by MapperHiMap).
	Baseline BaselineOptions
}

// CompileRequest is the canonical compilation entry point: it dispatches
// the request to the selected mapper, honoring ctx for cancellation and
// deadlines (a canceled compile fails with an error wrapping
// ErrCanceled). A nil ctx is treated as context.Background().
//
// For MapperHiMap the Result is the familiar hierarchical mapping. For
// MapperConventional the shared fields (Kernel, Fabric, CGRA, Block,
// Config, Utilization) are filled from the conventional mapping and
// Result.Conventional holds the full *BaselineResult; the
// hierarchical-only fields are nil/zero.
func CompileRequest(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch req.Mapper {
	case MapperHiMap, "":
		return core.CompileRequest(ctx, req.Kernel, req.Fabric, req.Options)
	case MapperConventional:
		block := req.Block
		if block == nil && req.Kernel != nil {
			block = req.Kernel.UniformBlock(4)
		}
		res, err := baseline.CompileRequest(ctx, req.Kernel, req.Fabric, block, req.Baseline)
		if err != nil {
			return nil, err
		}
		return &Result{
			Kernel:       res.Kernel,
			Fabric:       req.Fabric,
			CGRA:         req.Fabric.CGRA,
			Block:        res.Block,
			Config:       res.Config,
			Utilization:  res.Utilization,
			Conventional: res,
		}, nil
	default:
		return nil, fmt.Errorf("himap: unknown mapper %q (want %q or %q)",
			req.Mapper, MapperHiMap, MapperConventional)
	}
}
