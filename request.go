package himap

import (
	"context"
	"fmt"

	"himap/internal/diag"
)

// Mapper selects which compilation flow a Request runs. Mappers resolve
// through the backend registry (RegisterBackend / Backends); the three
// built-in flows register during package initialization.
type Mapper string

const (
	// MapperHiMap is the hierarchical flow of the paper (Algorithm 1):
	// IDFG → sub-CGRA mapping, systolic scheme search, place, route,
	// replicate. The zero Mapper value means MapperHiMap.
	MapperHiMap Mapper = "himap"
	// MapperConventional is the flat DFG → MRRG simulated-annealing
	// mapper the paper evaluates against (the "BHC" stand-in).
	MapperConventional Mapper = "conventional"
	// MapperExact is the branch-and-bound exact mapper: iterative
	// deepening on II from the static lower bound, with an optimality
	// certificate in Result.Optimality when the minimum is proved. Meant
	// for small blocks — it is the quality oracle the heuristic flows are
	// measured against, not a production compiler.
	MapperExact Mapper = "exact"
)

// Request is the unified compilation request: one kernel, one target
// fabric, one mapper, and that mapper's tuning options. It is the single
// input type of CompileRequest; the legacy Compile, CompileFabric,
// CompileBaseline, and CompileBaselineFabric entry points are thin
// wrappers constructing a Request.
type Request struct {
	// Kernel is the loop kernel to map. Required; a nil Kernel fails with
	// an error wrapping ErrInvalidRequest for every mapper.
	Kernel *Kernel
	// Fabric is the target architecture. Fabric{CGRA: cg} reproduces the
	// classic mesh/all-memory model.
	Fabric Fabric
	// Mapper selects the flow; the zero value is MapperHiMap.
	Mapper Mapper
	// Options tunes the HiMap flow (ignored by the other mappers).
	Options Options
	// Block is the unrolled block extent per loop dimension, used by
	// MapperConventional (nil defaults to Kernel.UniformBlock(4)) and
	// MapperExact (nil defaults to Kernel.UniformBlock(2)); the HiMap
	// flow derives its own block from the systolic scheme.
	Block []int
	// Baseline tunes the conventional flow (ignored by the other mappers).
	Baseline BaselineOptions
	// Exact tunes the exact flow (ignored by the other mappers).
	Exact ExactOptions
}

// CompileRequest is the canonical compilation entry point: it resolves
// the requested mapper in the backend registry, dispatches the request,
// and stamps the backend identity into Result.Backend. It honors ctx for
// cancellation and deadlines (a canceled compile fails with an error
// wrapping ErrCanceled). A nil ctx is treated as context.Background().
//
// For MapperHiMap the Result is the familiar hierarchical mapping. For
// MapperConventional the shared fields (Kernel, Fabric, CGRA, Block,
// Config, Utilization) are filled from the conventional mapping and
// Result.Conventional holds the full *BaselineResult. For MapperExact
// the shared fields are filled from the exact mapping, Result.Exact
// holds the full *ExactResult, and Result.Optimality carries the
// certificate. Unset fields of other flows stay nil/zero.
//
//himap:ctxroot
func CompileRequest(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Kernel == nil {
		return nil, diag.Failf(diag.ErrInvalidRequest, "nil kernel").
			Stamp("request", "", req.Fabric.String(), 0)
	}
	b, ok := BackendFor(req.Mapper)
	if !ok {
		return nil, fmt.Errorf("himap: unknown mapper %q (want %s)", req.Mapper, BackendNames())
	}
	res, err := b.Compile(ctx, req)
	if err != nil {
		return nil, err
	}
	res.Backend = string(b.Name())
	return res, nil
}
